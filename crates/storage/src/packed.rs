//! Frame-of-reference bit-packed integer storage.
//!
//! The encoded column variants (PR 7) all bottom out here: values are stored
//! as unsigned offsets from the column minimum (*frame of reference*), each
//! offset occupying exactly `width` bits inside a dense `Vec<u64>`. Kernels
//! scan the packed words directly — range predicates pre-encode their literal
//! via [`PackedInts::encode`] and compare raw offsets, so a filter over an
//! encoded column never materializes the decoded vector.
//!
//! The layout is deliberately boring: little-endian bit order inside each
//! word, values may straddle a word boundary (read via a two-word fetch),
//! `width == 0` means every value equals `base` and no words are stored.
//!
//! Batch decoding (PR 10) removes the per-element decode tax for kernels
//! that need the values (not just raw comparisons): [`PackedInts::unpack_range`]
//! decodes whole morsels word-at-a-time — 64 values per `width`-word block,
//! monomorphized per width so each block body is a fully unrolled,
//! autovectorizable loop. Residual per-row reads go through the branchless
//! ≤56-bit fast path in [`PackedInts::get_raw`] or a [`PackedCursor`], and
//! [`PackedInts::decoded`] memoizes one whole-column batch decode behind a
//! `OnceLock` for callers that truly want the full vector (the engine does
//! not: columns whose decoded values dominate stay plain at load instead —
//! DESIGN.md §3e).
//!
//! The word payload is either owned heap memory or a borrowed view into a
//! read-only file mapping ([`crate::mapped::Mapping`]): an LBCA v3 archive
//! aligns its packed payloads so [`PackedInts::from_parts_mapped`] can serve
//! scans straight from the page cache with zero copies.

use crate::mapped::Mapping;
use std::sync::{Arc, OnceLock};

/// The word payload: owned, or borrowed zero-copy from a file mapping.
#[derive(Clone, Debug)]
enum Words {
    Owned(Vec<u64>),
    Mapped {
        map: Arc<Mapping>,
        /// Byte offset of the first word inside the mapping (8-byte aligned,
        /// verified at construction).
        offset: usize,
        count: usize,
    },
}

impl Words {
    #[inline]
    fn as_slice(&self) -> &[u64] {
        match self {
            Words::Owned(v) => v,
            Words::Mapped { map, offset, count } => map
                .u64_slice(*offset, *count)
                .expect("alignment and bounds verified when the mapped view was constructed"),
        }
    }
}

/// Frame-of-reference bit-packed integers: `value = base + offset`, each
/// offset stored in `width` bits.
#[derive(Debug)]
pub struct PackedInts {
    base: i64,
    max: i64,
    width: u8,
    len: usize,
    words: Words,
    /// Whole-column batch decode, filled lazily by [`PackedInts::decoded`].
    /// Real heap once materialized: [`PackedInts::approx_bytes`] counts it,
    /// so the space half of the decode trade never hides (DESIGN.md §3e).
    decoded: OnceLock<Arc<Vec<i64>>>,
}

impl Clone for PackedInts {
    fn clone(&self) -> PackedInts {
        let decoded = OnceLock::new();
        // Share (don't redo) an already-computed batch decode.
        if let Some(d) = self.decoded.get() {
            let _ = decoded.set(Arc::clone(d));
        }
        PackedInts {
            base: self.base,
            max: self.max,
            width: self.width,
            len: self.len,
            words: self.words.clone(),
            decoded,
        }
    }
}

/// Equality is over the logical content (header + words); the lazily filled
/// decode cache is derived data and never participates.
impl PartialEq for PackedInts {
    fn eq(&self, other: &PackedInts) -> bool {
        self.base == other.base
            && self.max == other.max
            && self.width == other.width
            && self.len == other.len
            && self.words.as_slice() == other.words.as_slice()
    }
}

impl Eq for PackedInts {}

/// Decodes full 64-value blocks for one compile-time width: each block reads
/// exactly `W` words and writes exactly 64 values, with every index a
/// constant after unrolling — the autovectorizable inner loop of
/// [`PackedInts::unpack_range`].
#[inline]
fn unpack_block<const W: usize>(words: &[u64], base: i64, out: &mut [i64]) {
    let words: &[u64; W] = words.try_into().expect("block carries exactly W words");
    let out: &mut [i64; 64] = out.try_into().expect("block decodes exactly 64 values");
    let mask = if W == 64 { u64::MAX } else { (1u64 << W) - 1 };
    for (i, slot) in out.iter_mut().enumerate() {
        let bit = i * W;
        let (wi, sh) = (bit / 64, bit % 64);
        let mut raw = words[wi] >> sh;
        if sh + W > 64 {
            raw |= words[wi + 1] << (64 - sh);
        }
        *slot = base.wrapping_add((raw & mask) as i64);
    }
}

/// Width-dispatched block decoding: `words` holds `blocks * width` words,
/// `out` holds `blocks * 64` values. Monomorphized per width through the
/// macro so every canonical width class gets its own specialized loop.
fn unpack_blocks(width: u8, words: &[u64], base: i64, out: &mut [i64]) {
    macro_rules! arms {
        ($($w:literal)+) => {
            match width as usize {
                $( $w => {
                    for (bw, bo) in words.chunks_exact($w).zip(out.chunks_exact_mut(64)) {
                        unpack_block::<$w>(bw, base, bo);
                    }
                } )+
                _ => unreachable!("width 0 and width > 64 never reach the block path"),
            }
        };
    }
    arms!(1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20 21 22 23 24 25 26 27 28 29 30 31 32
          33 34 35 36 37 38 39 40 41 42 43 44 45 46 47 48 49 50 51 52 53 54 55 56 57 58 59 60 61
          62 63 64);
}

impl PackedInts {
    /// Packs a slice of values. The frame of reference (`base`) is the
    /// minimum and the bit width is the smallest that represents
    /// `max - min`. Offsets use wrapping arithmetic so the full `i64`
    /// domain round-trips (an all-domain column simply packs at width 64).
    pub fn from_values(values: &[i64]) -> PackedInts {
        let (mut min, mut max) = (i64::MAX, i64::MIN);
        for &v in values {
            min = min.min(v);
            max = max.max(v);
        }
        if values.is_empty() {
            (min, max) = (0, 0);
        }
        let span = max.wrapping_sub(min) as u64;
        let width = (64 - span.leading_zeros()) as u8;
        let mut packed = PackedInts {
            base: min,
            max,
            width,
            len: values.len(),
            words: Words::Owned(vec![0u64; Self::words_for(values.len(), width)]),
            decoded: OnceLock::new(),
        };
        for (i, &v) in values.iter().enumerate() {
            packed.set_raw(i, v.wrapping_sub(min) as u64);
        }
        packed
    }

    /// Reassembles a packed column from its serialized parts (the archive
    /// loader). Returns `None` when the parts are inconsistent — truncated
    /// word payloads must surface as corruption, not a later panic.
    pub fn from_parts(
        base: i64,
        max: i64,
        width: u8,
        len: usize,
        words: Vec<u64>,
    ) -> Option<PackedInts> {
        Self::check_parts(base, max, width, len, words.len())?;
        Some(PackedInts {
            base,
            max,
            width,
            len,
            words: Words::Owned(words),
            decoded: OnceLock::new(),
        })
    }

    /// Like [`PackedInts::from_parts`], but the words are borrowed zero-copy
    /// from `offset` bytes into a read-only file mapping instead of copied to
    /// the heap. Returns `None` for the same header inconsistencies, and
    /// additionally when the word range is out of the mapping's bounds or not
    /// 8-byte aligned — a misaligned v3 payload is a corruption, never UB.
    pub fn from_parts_mapped(
        base: i64,
        max: i64,
        width: u8,
        len: usize,
        map: Arc<Mapping>,
        offset: usize,
    ) -> Option<PackedInts> {
        let count = Self::check_parts_counted(base, max, width, len)?;
        map.u64_slice(offset, count)?;
        Some(PackedInts {
            base,
            max,
            width,
            len,
            words: Words::Mapped { map, offset, count },
            decoded: OnceLock::new(),
        })
    }

    fn check_parts(base: i64, max: i64, width: u8, len: usize, n_words: usize) -> Option<()> {
        (Self::check_parts_counted(base, max, width, len)? == n_words).then_some(())
    }

    /// Header validation shared by both constructors; returns the canonical
    /// word count.
    fn check_parts_counted(base: i64, max: i64, width: u8, len: usize) -> Option<usize> {
        if width > 64 {
            return None;
        }
        // The width is canonical — exactly what from_values derives from the
        // declared [base, max] span — so a tampered header cannot claim a
        // domain its offsets do not fit.
        let span = max.wrapping_sub(base) as u64;
        if (64 - span.leading_zeros()) as u8 != width {
            return None;
        }
        Some(Self::words_for(len, width))
    }

    /// Number of `u64` words needed to hold `len` values at `width` bits
    /// (the archive reader sizes its reads with this).
    pub fn words_for(len: usize, width: u8) -> usize {
        (len * width as usize).div_ceil(64)
    }

    #[inline]
    fn mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    fn set_raw(&mut self, i: usize, raw: u64) {
        let w = self.width as usize;
        if w == 0 {
            return;
        }
        let Words::Owned(words) = &mut self.words else {
            unreachable!("only from_values writes, and it always owns its words")
        };
        let bit = i * w;
        let (word, shift) = (bit / 64, bit % 64);
        words[word] |= raw << shift;
        if shift + w > 64 {
            words[word + 1] |= raw >> (64 - shift);
        }
    }

    /// The raw `width`-bit offset at row `i` (no frame-of-reference add).
    /// This is what encoding-aware kernels compare against a pre-encoded
    /// literal.
    ///
    /// Random access is on the hot path of date-index candidate filtering
    /// and selective gathers, so widths up to 56 bits take a branch-light
    /// route: any value narrower than 57 bits spans at most 8 consecutive
    /// bytes, so a single unaligned little-endian `u64` load at the value's
    /// byte offset replaces the two-word straddle dance. The load must stay
    /// inside the word buffer (the last few values of a column may not have
    /// 8 readable bytes behind them), so those fall back to the exact
    /// two-word path — a perfectly predicted branch everywhere but the
    /// buffer tail.
    #[inline]
    pub fn get_raw(&self, i: usize) -> u64 {
        debug_assert!(i < self.len);
        let w = self.width as usize;
        if w == 0 {
            return 0;
        }
        let words = self.words.as_slice();
        let bit = i * w;
        if w <= 56 {
            let byte = bit >> 3;
            if byte + 8 <= words.len() * 8 {
                // In-bounds for the byte range checked above; `u64` tolerates
                // unaligned reads via `read_unaligned`.
                let raw = unsafe {
                    (words.as_ptr().cast::<u8>().add(byte).cast::<u64>()).read_unaligned()
                };
                return (u64::from_le(raw) >> (bit & 7)) & self.mask();
            }
        }
        let (word, shift) = (bit / 64, bit % 64);
        let mut raw = words[word] >> shift;
        if shift + w > 64 {
            raw |= words[word + 1] << (64 - shift);
        }
        raw & self.mask()
    }

    /// The decoded value at row `i`.
    #[inline]
    pub fn get(&self, i: usize) -> i64 {
        self.base.wrapping_add(self.get_raw(i) as i64)
    }

    /// A borrowed random-access cursor with the per-call setup (word-slice
    /// resolution, mask derivation) hoisted out of the read loop — the shape
    /// per-row consumers like the date-index candidate filter want when they
    /// probe many scattered rows.
    pub fn cursor(&self) -> PackedCursor<'_> {
        PackedCursor {
            words: self.words.as_slice(),
            width: self.width as usize,
            mask: self.mask(),
            base: self.base,
            len: self.len,
        }
    }

    /// Batch-decodes `out.len()` values starting at row `start` into `out` —
    /// the fused-unpack primitive. A scalar head aligns to a 64-value block
    /// boundary, full blocks run through the width-monomorphized
    /// word-at-a-time loop (64 values per `width` words), and a scalar tail
    /// finishes non-multiple-of-64 remainders. Output is element-for-element
    /// identical to per-row [`PackedInts::get`].
    pub fn unpack_range(&self, start: usize, out: &mut [i64]) {
        let end = start.checked_add(out.len()).expect("range end overflows");
        assert!(end <= self.len, "unpack_range {start}..{end} out of bounds (len {})", self.len);
        if self.width == 0 {
            out.fill(self.base);
            return;
        }
        let w = self.width as usize;
        let mut i = start;
        let mut o = 0;
        // Head: scalar-decode up to the first 64-value block boundary.
        while o < out.len() && !i.is_multiple_of(64) {
            out[o] = self.get(i);
            i += 1;
            o += 1;
        }
        // Body: whole blocks of 64 values — each spans exactly `w` words.
        let blocks = (out.len() - o) / 64;
        if blocks > 0 {
            let words = self.words.as_slice();
            let first = (i / 64) * w;
            unpack_blocks(
                self.width,
                &words[first..first + blocks * w],
                self.base,
                &mut out[o..o + blocks * 64],
            );
            i += blocks * 64;
            o += blocks * 64;
        }
        // Tail: scalar remainder.
        while o < out.len() {
            out[o] = self.get(i);
            i += 1;
            o += 1;
        }
    }

    /// The whole column batch-decoded once and memoized: every reader of the
    /// same packed column shares the single decode. The engine deliberately
    /// does **not** use this — a column whose decoded values dominate stays
    /// plain at load instead (DESIGN.md §3e), because a memoized decode on a
    /// session-shared column is resident heap billed to every later query.
    /// The cache is counted by [`PackedInts::approx_bytes`] once
    /// materialized and dropped with the column.
    pub fn decoded(&self) -> Arc<Vec<i64>> {
        Arc::clone(self.decoded.get_or_init(|| {
            let mut out = vec![0i64; self.len];
            self.unpack_range(0, &mut out);
            Arc::new(out)
        }))
    }

    /// Pre-encodes a comparison literal: the raw offset this value would
    /// pack to, or `None` when it lies outside `[base, max]` (the caller
    /// clamps the predicate to constant true/false per operator).
    #[inline]
    pub fn encode(&self, v: i64) -> Option<u64> {
        if v < self.base || v > self.max {
            None
        } else {
            Some(v.wrapping_sub(self.base) as u64)
        }
    }

    /// Number of values.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The frame of reference (column minimum).
    pub fn base(&self) -> i64 {
        self.base
    }

    /// The column maximum (upper end of the encodable domain).
    pub fn max(&self) -> i64 {
        self.max
    }

    /// Bits per stored offset (0 for a constant column).
    pub fn width(&self) -> u8 {
        self.width
    }

    /// The packed word payload (archive serialization).
    pub fn words(&self) -> &[u64] {
        self.words.as_slice()
    }

    /// Decoded values in row order.
    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        (0..self.len).map(|i| self.get(i))
    }

    /// True when the words are borrowed from a file mapping rather than
    /// owned heap memory.
    pub fn is_mapped(&self) -> bool {
        matches!(self.words, Words::Mapped { .. })
    }

    /// Resident heap footprint in bytes. Mapped words are
    /// page-cache-borrowed, not resident: they report 0 here and their size
    /// under [`PackedInts::mapped_bytes`]. A memoized whole-column decode
    /// ([`PackedInts::decoded`]) *is* resident heap and is counted once
    /// materialized — the space half of the scratch-unpack trade never
    /// hides from the memory figure.
    pub fn approx_bytes(&self) -> usize {
        let words = match &self.words {
            Words::Owned(v) => v.capacity() * 8,
            Words::Mapped { .. } => 0,
        };
        words + self.decoded.get().map_or(0, |d| d.capacity() * 8)
    }

    /// Bytes served zero-copy from a file mapping (0 for owned words).
    pub fn mapped_bytes(&self) -> usize {
        match &self.words {
            Words::Owned(_) => 0,
            Words::Mapped { count, .. } => count * 8,
        }
    }
}

/// Borrowed random-access view over a [`PackedInts`] with the per-call setup
/// hoisted (see [`PackedInts::cursor`]). Element-for-element identical to
/// [`PackedInts::get`].
#[derive(Clone, Copy, Debug)]
pub struct PackedCursor<'a> {
    words: &'a [u64],
    width: usize,
    mask: u64,
    base: i64,
    len: usize,
}

impl PackedCursor<'_> {
    /// The decoded value at row `i` — same fast-path discipline as
    /// [`PackedInts::get_raw`]: one unaligned little-endian load for widths
    /// up to 56 bits, the exact two-word path near the buffer tail.
    #[inline]
    pub fn get(&self, i: usize) -> i64 {
        debug_assert!(i < self.len);
        if self.width == 0 {
            return self.base;
        }
        let bit = i * self.width;
        let raw = if self.width <= 56 && (bit >> 3) + 8 <= self.words.len() * 8 {
            // SAFETY: the byte range is in bounds per the check above;
            // `read_unaligned` tolerates any alignment.
            let raw = unsafe {
                (self.words.as_ptr().cast::<u8>().add(bit >> 3).cast::<u64>()).read_unaligned()
            };
            u64::from_le(raw) >> (bit & 7)
        } else {
            let (word, shift) = (bit / 64, bit % 64);
            let mut raw = self.words[word] >> shift;
            if shift + self.width > 64 {
                raw |= self.words[word + 1] << (64 - shift);
            }
            raw
        };
        self.base.wrapping_add((raw & self.mask) as i64)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_small() {
        let vals = vec![100, 103, 100, 107, 101];
        let p = PackedInts::from_values(&vals);
        assert_eq!(p.base(), 100);
        assert_eq!(p.width(), 3);
        assert_eq!(p.iter().collect::<Vec<_>>(), vals);
    }

    #[test]
    fn constant_column_has_width_zero() {
        let p = PackedInts::from_values(&[42; 1000]);
        assert_eq!(p.width(), 0);
        assert!(p.words().is_empty());
        assert_eq!(p.get(999), 42);
        assert_eq!(p.get_raw(500), 0);
    }

    #[test]
    fn straddling_reads() {
        // Width 13 guarantees values straddle word boundaries.
        let vals: Vec<i64> = (0..500).map(|i| (i * 17) % 8000).collect();
        let p = PackedInts::from_values(&vals);
        assert_eq!(p.width(), 13);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(p.get(i), v, "row {i}");
        }
    }

    #[test]
    fn full_domain_packs_at_width_64() {
        let vals = vec![i64::MIN, 0, i64::MAX, -1, 1];
        let p = PackedInts::from_values(&vals);
        assert_eq!(p.width(), 64);
        assert_eq!(p.iter().collect::<Vec<_>>(), vals);
    }

    #[test]
    fn negative_values() {
        let vals = vec![-50, -7, -50, -1, -23];
        let p = PackedInts::from_values(&vals);
        assert_eq!(p.base(), -50);
        assert_eq!(p.iter().collect::<Vec<_>>(), vals);
    }

    #[test]
    fn encode_literal() {
        let p = PackedInts::from_values(&[10, 20, 30]);
        assert_eq!(p.encode(10), Some(0));
        assert_eq!(p.encode(30), Some(20));
        assert_eq!(p.encode(9), None);
        assert_eq!(p.encode(31), None);
    }

    #[test]
    fn empty_input() {
        let p = PackedInts::from_values(&[]);
        assert_eq!(p.len(), 0);
        assert!(p.is_empty());
        assert_eq!(p.width(), 0);
    }

    #[test]
    fn from_parts_rejects_wrong_word_count() {
        let p = PackedInts::from_values(&[1, 2, 3, 4]);
        let mut words = p.words().to_vec();
        words.push(0);
        assert!(PackedInts::from_parts(p.base(), p.max(), p.width(), p.len(), words).is_none());
        assert!(PackedInts::from_parts(0, 0, 65, 0, vec![]).is_none());
    }

    #[test]
    fn every_width_roundtrips() {
        // One value per possible offset width 1..=64 (the proptest suite
        // covers random fills; this pins the exact boundary arithmetic).
        for width in 1..=64u32 {
            let hi = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
            let vals: Vec<i64> =
                (0..130u64).map(|i| (hi.wrapping_mul(i).wrapping_add(i) & hi) as i64).collect();
            let p = PackedInts::from_values(&vals);
            assert!(p.width() as u32 <= width, "width {width}");
            for (i, &v) in vals.iter().enumerate() {
                assert_eq!(p.get(i), v, "width {width} row {i}");
            }
        }
    }

    /// Deterministic value fill exercising the full offset domain of a width.
    fn fill(width: u32, n: usize) -> Vec<i64> {
        let hi = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        (0..n as u64).map(|i| (hi.wrapping_mul(i).wrapping_add(i * 31 + 7) & hi) as i64).collect()
    }

    #[test]
    fn unpack_range_matches_get_for_every_width() {
        for width in [1u32, 2, 3, 7, 8, 13, 31, 32, 33, 63, 64] {
            // 3 blocks plus a non-multiple-of-64 tail.
            let vals = fill(width, 64 * 3 + 17);
            let p = PackedInts::from_values(&vals);
            let mut out = vec![0i64; vals.len()];
            p.unpack_range(0, &mut out);
            assert_eq!(out, vals, "width {width}");
        }
    }

    #[test]
    fn unpack_range_handles_unaligned_starts_and_odd_lengths() {
        let vals = fill(7, 64 * 4 + 9);
        let p = PackedInts::from_values(&vals);
        // Starts and lengths chosen to hit: head-only, head+block+tail,
        // block-only, tail-only, and morsel boundaries straddling u64 words.
        for start in [0usize, 1, 9, 63, 64, 65, 100, 127, 128, 200] {
            for len in [0usize, 1, 17, 63, 64, 65, 128, 130] {
                if start + len > vals.len() {
                    continue;
                }
                let mut out = vec![0i64; len];
                p.unpack_range(start, &mut out);
                assert_eq!(out, &vals[start..start + len], "start {start} len {len}");
            }
        }
    }

    #[test]
    fn unpack_range_width_zero_fills_the_constant() {
        let p = PackedInts::from_values(&[42; 300]);
        let mut out = vec![0i64; 150];
        p.unpack_range(75, &mut out);
        assert!(out.iter().all(|&v| v == 42));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn unpack_range_rejects_out_of_bounds() {
        let p = PackedInts::from_values(&[1, 2, 3]);
        let mut out = vec![0i64; 4];
        p.unpack_range(0, &mut out);
    }

    #[test]
    fn decoded_is_memoized_and_shared() {
        let vals = fill(13, 1000);
        let p = PackedInts::from_values(&vals);
        let a = p.decoded();
        let b = p.decoded();
        assert!(Arc::ptr_eq(&a, &b), "second call must reuse the first decode");
        assert_eq!(*a, vals);
        // Clones share an already-computed decode instead of redoing it.
        let c = p.clone();
        assert!(Arc::ptr_eq(&a, &c.decoded()));
        // And the cache never participates in equality.
        let fresh = PackedInts::from_values(&vals);
        assert_eq!(p, fresh);
    }

    #[test]
    fn negative_bases_batch_decode_correctly() {
        let vals: Vec<i64> = (0..200).map(|i| -5000 + (i * 37) % 900).collect();
        let p = PackedInts::from_values(&vals);
        let mut out = vec![0i64; vals.len()];
        p.unpack_range(0, &mut out);
        assert_eq!(out, vals);
        assert_eq!(*p.decoded(), vals);
    }

    #[cfg(unix)]
    #[test]
    fn mapped_words_read_identically_and_report_zero_resident() {
        let vals = fill(13, 777);
        let p = PackedInts::from_values(&vals);
        // Serialize the words to a file with the v3 payload discipline:
        // 8-byte-aligned word start.
        let dir = std::env::temp_dir().join("legobase-packed-mapped-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("words.bin");
        let mut bytes = vec![0u8; 8]; // 8 bytes of header padding keeps alignment
        for w in p.words() {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        std::fs::write(&path, &bytes).expect("write");
        let map = Arc::new(Mapping::map_file(&path).expect("map"));
        let m =
            PackedInts::from_parts_mapped(p.base(), p.max(), p.width(), p.len(), map.clone(), 8)
                .expect("aligned mapped parts");
        assert!(m.is_mapped() && !p.is_mapped());
        assert_eq!(m.approx_bytes(), 0);
        assert_eq!(m.mapped_bytes(), p.words().len() * 8);
        assert_eq!(m, p, "mapped and owned forms are equal");
        assert_eq!(*m.decoded(), vals);
        // Misaligned or out-of-bounds mapped views are rejected, not UB.
        assert!(PackedInts::from_parts_mapped(
            p.base(),
            p.max(),
            p.width(),
            p.len(),
            map.clone(),
            7
        )
        .is_none());
        assert!(PackedInts::from_parts_mapped(
            p.base(),
            p.max(),
            p.width(),
            p.len(),
            map,
            bytes.len()
        )
        .is_none());
        std::fs::remove_file(&path).ok();
    }
}
