//! Frame-of-reference bit-packed integer storage.
//!
//! The encoded column variants (PR 7) all bottom out here: values are stored
//! as unsigned offsets from the column minimum (*frame of reference*), each
//! offset occupying exactly `width` bits inside a dense `Vec<u64>`. Kernels
//! scan the packed words directly — range predicates pre-encode their literal
//! via [`PackedInts::encode`] and compare raw offsets, so a filter over an
//! encoded column never materializes the decoded vector.
//!
//! The layout is deliberately boring: little-endian bit order inside each
//! word, values may straddle a word boundary (read via a two-word fetch),
//! `width == 0` means every value equals `base` and no words are stored.

/// Frame-of-reference bit-packed integers: `value = base + offset`, each
/// offset stored in `width` bits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PackedInts {
    base: i64,
    max: i64,
    width: u8,
    len: usize,
    words: Vec<u64>,
}

impl PackedInts {
    /// Packs a slice of values. The frame of reference (`base`) is the
    /// minimum and the bit width is the smallest that represents
    /// `max - min`. Offsets use wrapping arithmetic so the full `i64`
    /// domain round-trips (an all-domain column simply packs at width 64).
    pub fn from_values(values: &[i64]) -> PackedInts {
        let (mut min, mut max) = (i64::MAX, i64::MIN);
        for &v in values {
            min = min.min(v);
            max = max.max(v);
        }
        if values.is_empty() {
            (min, max) = (0, 0);
        }
        let span = max.wrapping_sub(min) as u64;
        let width = (64 - span.leading_zeros()) as u8;
        let mut packed = PackedInts {
            base: min,
            max,
            width,
            len: values.len(),
            words: vec![0u64; Self::words_for(values.len(), width)],
        };
        for (i, &v) in values.iter().enumerate() {
            packed.set_raw(i, v.wrapping_sub(min) as u64);
        }
        packed
    }

    /// Reassembles a packed column from its serialized parts (the archive
    /// loader). Returns `None` when the parts are inconsistent — truncated
    /// word payloads must surface as corruption, not a later panic.
    pub fn from_parts(
        base: i64,
        max: i64,
        width: u8,
        len: usize,
        words: Vec<u64>,
    ) -> Option<PackedInts> {
        if width > 64 || words.len() != Self::words_for(len, width) {
            return None;
        }
        // The width is canonical — exactly what from_values derives from the
        // declared [base, max] span — so a tampered header cannot claim a
        // domain its offsets do not fit.
        let span = max.wrapping_sub(base) as u64;
        if (64 - span.leading_zeros()) as u8 != width {
            return None;
        }
        Some(PackedInts { base, max, width, len, words })
    }

    /// Number of `u64` words needed to hold `len` values at `width` bits
    /// (the archive reader sizes its reads with this).
    pub fn words_for(len: usize, width: u8) -> usize {
        (len * width as usize).div_ceil(64)
    }

    #[inline]
    fn mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    fn set_raw(&mut self, i: usize, raw: u64) {
        let w = self.width as usize;
        if w == 0 {
            return;
        }
        let bit = i * w;
        let (word, shift) = (bit / 64, bit % 64);
        self.words[word] |= raw << shift;
        if shift + w > 64 {
            self.words[word + 1] |= raw >> (64 - shift);
        }
    }

    /// The raw `width`-bit offset at row `i` (no frame-of-reference add).
    /// This is what encoding-aware kernels compare against a pre-encoded
    /// literal.
    #[inline]
    pub fn get_raw(&self, i: usize) -> u64 {
        debug_assert!(i < self.len);
        let w = self.width as usize;
        if w == 0 {
            return 0;
        }
        let bit = i * w;
        let (word, shift) = (bit / 64, bit % 64);
        let mut raw = self.words[word] >> shift;
        if shift + w > 64 {
            raw |= self.words[word + 1] << (64 - shift);
        }
        raw & self.mask()
    }

    /// The decoded value at row `i`.
    #[inline]
    pub fn get(&self, i: usize) -> i64 {
        self.base.wrapping_add(self.get_raw(i) as i64)
    }

    /// Pre-encodes a comparison literal: the raw offset this value would
    /// pack to, or `None` when it lies outside `[base, max]` (the caller
    /// clamps the predicate to constant true/false per operator).
    #[inline]
    pub fn encode(&self, v: i64) -> Option<u64> {
        if v < self.base || v > self.max {
            None
        } else {
            Some(v.wrapping_sub(self.base) as u64)
        }
    }

    /// Number of values.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The frame of reference (column minimum).
    pub fn base(&self) -> i64 {
        self.base
    }

    /// The column maximum (upper end of the encodable domain).
    pub fn max(&self) -> i64 {
        self.max
    }

    /// Bits per stored offset (0 for a constant column).
    pub fn width(&self) -> u8 {
        self.width
    }

    /// The packed word payload (archive serialization).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Decoded values in row order.
    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        (0..self.len).map(|i| self.get(i))
    }

    /// Heap footprint in bytes (words only — header is inline).
    pub fn approx_bytes(&self) -> usize {
        self.words.capacity() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_small() {
        let vals = vec![100, 103, 100, 107, 101];
        let p = PackedInts::from_values(&vals);
        assert_eq!(p.base(), 100);
        assert_eq!(p.width(), 3);
        assert_eq!(p.iter().collect::<Vec<_>>(), vals);
    }

    #[test]
    fn constant_column_has_width_zero() {
        let p = PackedInts::from_values(&[42; 1000]);
        assert_eq!(p.width(), 0);
        assert!(p.words().is_empty());
        assert_eq!(p.get(999), 42);
        assert_eq!(p.get_raw(500), 0);
    }

    #[test]
    fn straddling_reads() {
        // Width 13 guarantees values straddle word boundaries.
        let vals: Vec<i64> = (0..500).map(|i| (i * 17) % 8000).collect();
        let p = PackedInts::from_values(&vals);
        assert_eq!(p.width(), 13);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(p.get(i), v, "row {i}");
        }
    }

    #[test]
    fn full_domain_packs_at_width_64() {
        let vals = vec![i64::MIN, 0, i64::MAX, -1, 1];
        let p = PackedInts::from_values(&vals);
        assert_eq!(p.width(), 64);
        assert_eq!(p.iter().collect::<Vec<_>>(), vals);
    }

    #[test]
    fn negative_values() {
        let vals = vec![-50, -7, -50, -1, -23];
        let p = PackedInts::from_values(&vals);
        assert_eq!(p.base(), -50);
        assert_eq!(p.iter().collect::<Vec<_>>(), vals);
    }

    #[test]
    fn encode_literal() {
        let p = PackedInts::from_values(&[10, 20, 30]);
        assert_eq!(p.encode(10), Some(0));
        assert_eq!(p.encode(30), Some(20));
        assert_eq!(p.encode(9), None);
        assert_eq!(p.encode(31), None);
    }

    #[test]
    fn empty_input() {
        let p = PackedInts::from_values(&[]);
        assert_eq!(p.len(), 0);
        assert!(p.is_empty());
        assert_eq!(p.width(), 0);
    }

    #[test]
    fn from_parts_rejects_wrong_word_count() {
        let p = PackedInts::from_values(&[1, 2, 3, 4]);
        let mut words = p.words().to_vec();
        words.push(0);
        assert!(PackedInts::from_parts(p.base(), p.max(), p.width(), p.len(), words).is_none());
        assert!(PackedInts::from_parts(0, 0, 65, 0, vec![]).is_none());
    }

    #[test]
    fn every_width_roundtrips() {
        // One value per possible offset width 1..=64 (the proptest suite
        // covers random fills; this pins the exact boundary arithmetic).
        for width in 1..=64u32 {
            let hi = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
            let vals: Vec<i64> =
                (0..130u64).map(|i| (hi.wrapping_mul(i).wrapping_add(i) & hi) as i64).collect();
            let p = PackedInts::from_values(&vals);
            assert!(p.width() as u32 <= width, "width {width}");
            for (i, &v) in vals.iter().enumerate() {
                assert_eq!(p.get(i), v, "width {width} row {i}");
            }
        }
    }
}
