//! Read-only memory-mapped files for zero-copy archive loads.
//!
//! [`Mapping`] is a minimal, dependency-free wrapper over raw `mmap` /
//! `munmap` FFI (std already links libc, so no crate is needed). The archive
//! reader maps a `.lbca` file once and hands out `Arc<Mapping>`-backed word
//! slices to [`crate::packed::PackedInts`], so packed column payloads are
//! borrowed straight from the page cache instead of copied onto the heap.
//!
//! Safety discipline:
//!
//! * the mapping is `PROT_READ` + `MAP_PRIVATE` — nothing through this type
//!   can write the file;
//! * the pages stay mapped for as long as *any* `Arc<Mapping>` clone lives
//!   (`munmap` runs in `Drop` of the last clone), so a borrowed slice can
//!   never outlive its pages — the mid-read `munmap` pattern is
//!   unrepresentable;
//! * consumers that need typed views (`&[u64]`) must go through
//!   [`Mapping::u64_slice`], which checks alignment and bounds and returns
//!   `None` instead of constructing an unaligned reference (misaligned v3
//!   payloads surface as typed archive errors, never UB).
//!
//! On non-Unix targets (or if the `mmap` call itself fails — e.g. an empty
//! file, an exotic filesystem) [`Mapping::map_file`] returns an error and
//! callers fall back to the plain read+decode path.

use std::fs::File;
use std::io;
use std::path::Path;

#[cfg(unix)]
mod sys {
    use std::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A read-only memory mapping of an entire file.
pub struct Mapping {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is read-only (`PROT_READ`) and private; the pointed-at
// pages never change through this type and are valid until `Drop`, so shared
// references from any thread are sound.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Maps `path` read-only in its entirety. Returns an error on non-Unix
    /// targets, for zero-length files (`mmap` rejects them), or when the
    /// `mmap` call fails — callers are expected to fall back to `fs::read`.
    pub fn map_file(path: &Path) -> io::Result<Mapping> {
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            let file = File::open(path)?;
            let len = file.metadata()?.len();
            let len = usize::try_from(len)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
            if len == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "refusing to map a zero-length file",
                ));
            }
            // SAFETY: plain mmap of an open fd; the result is checked against
            // MAP_FAILED before use, and the fd may be closed after mmap
            // returns (the mapping keeps its own reference to the pages).
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as usize == usize::MAX {
                return Err(io::Error::last_os_error());
            }
            Ok(Mapping { ptr: ptr as *const u8, len })
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            Err(io::Error::new(io::ErrorKind::Unsupported, "mmap is only wired up on Unix"))
        }
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: `ptr` points at `len` mapped read-only bytes that stay
        // valid until `Drop`.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is mapped (never constructed today, but keeps the
    /// `len`/`is_empty` pairing honest).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A `&[u64]` view of `count` little-endian words starting at byte
    /// `offset`, or `None` when the range is out of bounds **or not 8-byte
    /// aligned** (constructing an unaligned `&[u64]` would be UB; the caller
    /// reports a typed corruption error instead).
    pub fn u64_slice(&self, offset: usize, count: usize) -> Option<&[u64]> {
        let bytes = count.checked_mul(8)?;
        let end = offset.checked_add(bytes)?;
        if end > self.len {
            return None;
        }
        // SAFETY: bounds checked above; alignment checked here; u64 has no
        // invalid bit patterns; the pages are valid until `Drop`.
        let start = unsafe { self.ptr.add(offset) };
        if !(start as usize).is_multiple_of(std::mem::align_of::<u64>()) {
            return None;
        }
        Some(unsafe { std::slice::from_raw_parts(start as *const u64, count) })
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(unix)]
        // SAFETY: `ptr`/`len` came from a successful mmap and are unmapped
        // exactly once.
        unsafe {
            sys::munmap(self.ptr as *mut std::ffi::c_void, self.len);
        }
    }
}

impl std::fmt::Debug for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mapping").field("len", &self.len).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("legobase-mapped-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(name);
        std::fs::write(&path, bytes).expect("write");
        path
    }

    #[test]
    #[cfg(unix)]
    fn maps_and_reads_back() {
        let path = temp("roundtrip.bin", &[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let m = Mapping::map_file(&path).expect("map");
        assert_eq!(m.len(), 9);
        assert!(!m.is_empty());
        assert_eq!(m.bytes(), &[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        // One aligned word at offset 0.
        assert_eq!(m.u64_slice(0, 1), Some(&[u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8])][..]));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[cfg(unix)]
    fn u64_slice_rejects_misalignment_and_overflow() {
        let path = temp("align.bin", &[0u8; 64]);
        let m = Mapping::map_file(&path).expect("map");
        assert!(m.u64_slice(0, 8).is_some());
        // Page-aligned base + odd offset = misaligned view.
        assert!(m.u64_slice(1, 1).is_none());
        assert!(m.u64_slice(4, 1).is_none());
        // Out of bounds, including overflow-adjacent sizes.
        assert!(m.u64_slice(0, 9).is_none());
        assert!(m.u64_slice(64, 1).is_none());
        assert!(m.u64_slice(usize::MAX, 1).is_none());
        assert!(m.u64_slice(0, usize::MAX).is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[cfg(unix)]
    fn zero_length_files_fall_back() {
        let path = temp("empty.bin", &[]);
        assert!(Mapping::map_file(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(Mapping::map_file(Path::new("/nonexistent/legobase.lbca")).is_err());
    }
}
