//! The generic, boxed value representation used by the *unoptimized* engines.
//!
//! In the paper, the naive LegoBase engine manipulates generic `Record`s whose
//! fields live behind Scala's uniform object representation. [`Value`] plays
//! that role here: every attribute access goes through an enum dispatch and
//! every tuple is a heap allocation. The optimized configurations eliminate
//! this representation entirely (columns of native `i64`/`f64`/dictionary
//! codes) — exactly the abstraction overhead the SC compiler removes.

use crate::date::Date;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A dynamically-typed SQL value.
#[derive(Clone, Debug, Default)]
pub enum Value {
    /// SQL NULL (produced by outer joins).
    #[default]
    Null,
    /// 64-bit integer (TPC-H keys, quantities, counts).
    Int(i64),
    /// 64-bit float (prices, discounts, aggregates).
    Float(f64),
    /// Variable-length string.
    Str(String),
    /// Calendar date.
    Date(Date),
    /// Boolean (intermediate predicate results).
    Bool(bool),
}

/// A generic tuple: the row representation of the unoptimized engines.
pub type Tuple = Vec<Value>;

impl Value {
    /// Returns the integer payload.
    ///
    /// # Panics
    /// Panics if the value is not an `Int`; the engines only call this after
    /// type checking the plan.
    #[inline]
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            other => panic!("expected Int, found {other:?}"),
        }
    }

    /// Returns the float payload, widening integers (SQL numeric promotion).
    #[inline]
    pub fn as_float(&self) -> f64 {
        match self {
            Value::Float(v) => *v,
            Value::Int(v) => *v as f64,
            other => panic!("expected Float, found {other:?}"),
        }
    }

    /// Returns the string payload.
    #[inline]
    pub fn as_str(&self) -> &str {
        match self {
            Value::Str(v) => v,
            other => panic!("expected Str, found {other:?}"),
        }
    }

    /// Returns the date payload.
    #[inline]
    pub fn as_date(&self) -> Date {
        match self {
            Value::Date(v) => *v,
            other => panic!("expected Date, found {other:?}"),
        }
    }

    /// Returns the boolean payload.
    #[inline]
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(v) => *v,
            other => panic!("expected Bool, found {other:?}"),
        }
    }

    /// True iff this is SQL NULL.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Date(_) => 4,
            Value::Str(_) => 5,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: NULL sorts first; numerics compare cross-type; floats use
    /// IEEE total ordering so the order is well-defined even for NaN.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => b.hash(state),
            // Integers and integral floats must hash identically because they
            // compare equal under `cmp`.
            Value::Int(v) => (*v as f64).to_bits().hash(state),
            Value::Float(v) => v.to_bits().hash(state),
            Value::Date(d) => d.0.hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v:.4}"),
            Value::Str(v) => write!(f, "{v}"),
            Value::Date(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn cross_type_numeric_equality_consistent_with_hash() {
        let a = Value::Int(42);
        let b = Value::Float(42.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn ordering_is_total() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Int(-1),
            Value::Float(0.5),
            Value::Date(Date::from_ymd(1995, 6, 1)),
            Value::Str("abc".into()),
        ];
        for a in &vals {
            assert_eq!(a.cmp(a), Ordering::Equal);
            for b in &vals {
                let ab = a.cmp(b);
                let ba = b.cmp(a);
                assert_eq!(ab, ba.reverse());
            }
        }
    }

    #[test]
    fn null_sorts_first() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::Str(String::new()));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), 3);
        assert_eq!(Value::Int(3).as_float(), 3.0);
        assert_eq!(Value::Float(2.5).as_float(), 2.5);
        assert_eq!(Value::Str("x".into()).as_str(), "x");
        assert!(Value::Null.is_null());
        assert!(Value::Bool(true).as_bool());
    }

    #[test]
    #[should_panic(expected = "expected Int")]
    fn wrong_accessor_panics() {
        Value::Str("x".into()).as_int();
    }
}
