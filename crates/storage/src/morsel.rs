//! Morsel partitioning for intra-query parallelism.
//!
//! The paper's generated C executes each query single-threaded; the engine
//! here additionally supports morsel-driven parallel execution in the style
//! of Leis et al.: the input of a pipeline is cut into contiguous row-range
//! *morsels* over the `Arc`-backed typed columns (no data is copied — a
//! morsel is just an index range into shared column vectors), worker threads
//! pull morsels from a shared queue, and per-morsel partial results are
//! merged in morsel-index order.
//!
//! Two properties make the scheme deterministic:
//!
//! 1. **Morsel boundaries are fixed** ([`MORSEL_ROWS`] rows), independent of
//!    the worker count — so the partial-result combination tree, and hence
//!    every floating-point rounding decision, is identical whether 2 or 8
//!    threads execute the query.
//! 2. **Merges happen in morsel-index order** on the coordinating thread —
//!    so which worker happened to grab which morsel never influences the
//!    result.

/// Fixed morsel granularity in rows.
///
/// Fixed (rather than `rows / threads`) so that results are bit-identical
/// across parallelism degrees ≥ 2 (see the module docs). 4096 rows is large
/// enough to amortize per-morsel state setup and small enough that the tiny
/// scale factors used by the test suite still produce several morsels.
pub const MORSEL_ROWS: usize = 4096;

/// A contiguous range of logical row positions, `start..end`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Morsel {
    /// First logical row (inclusive).
    pub start: usize,
    /// One past the last logical row.
    pub end: usize,
}

impl Morsel {
    /// Number of rows in the morsel.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the morsel covers no rows.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// The row range as an iterator-friendly `Range`.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

/// Cuts `total` rows into contiguous morsels of `morsel_rows` rows each
/// (the last morsel may be shorter). `total == 0` yields no morsels.
pub fn morsels(total: usize, morsel_rows: usize) -> Vec<Morsel> {
    assert!(morsel_rows > 0, "morsel size must be positive");
    let mut out = Vec::with_capacity(total.div_ceil(morsel_rows));
    let mut start = 0;
    while start < total {
        let end = (start + morsel_rows).min(total);
        out.push(Morsel { start, end });
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cover_all_rows_without_overlap() {
        for total in [0usize, 1, 4095, 4096, 4097, 10_000, 65_536] {
            let ms = morsels(total, MORSEL_ROWS);
            let covered: usize = ms.iter().map(Morsel::len).sum();
            assert_eq!(covered, total);
            let mut cursor = 0;
            for m in &ms {
                assert_eq!(m.start, cursor, "contiguous");
                assert!(m.len() <= MORSEL_ROWS);
                assert!(!m.is_empty());
                cursor = m.end;
            }
            assert_eq!(cursor, total);
        }
    }

    #[test]
    fn boundaries_do_not_depend_on_worker_count() {
        // The whole determinism contract rests on this: the partition is a
        // function of the row count alone.
        let a = morsels(100_000, MORSEL_ROWS);
        let b = morsels(100_000, MORSEL_ROWS);
        assert_eq!(a, b);
    }

    #[test]
    fn last_morsel_short() {
        let ms = morsels(MORSEL_ROWS + 7, MORSEL_ROWS);
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[1].len(), 7);
        assert_eq!(ms[1].range(), MORSEL_ROWS..MORSEL_ROWS + 7);
    }

    #[test]
    #[should_panic(expected = "morsel size must be positive")]
    fn zero_morsel_size_rejected() {
        morsels(10, 0);
    }
}
