//! Morsel partitioning for intra-query parallelism.
//!
//! The paper's generated C executes each query single-threaded; the engine
//! here additionally supports morsel-driven parallel execution in the style
//! of Leis et al.: the input of a pipeline is cut into contiguous row-range
//! *morsels* over the `Arc`-backed typed columns (no data is copied — a
//! morsel is just an index range into shared column vectors), worker threads
//! pull morsels from a shared queue, and per-morsel partial results are
//! merged in morsel-index order.
//!
//! Two properties make the scheme deterministic:
//!
//! 1. **Morsel boundaries are fixed** ([`MORSEL_ROWS`] rows), independent of
//!    the worker count — so the partial-result combination tree, and hence
//!    every floating-point rounding decision, is identical whether 2 or 8
//!    threads execute the query.
//! 2. **Merges happen in morsel-index order** on the coordinating thread —
//!    so which worker happened to grab which morsel never influences the
//!    result.
//!
//! For order-*producing* operators the merge step is [`merge_sorted_runs`]:
//! per-morsel stable sorts are combined by a balanced pairwise merge whose
//! ties break toward the earlier morsel, reproducing the serial stable sort
//! bit for bit.

/// Fixed morsel granularity in rows.
///
/// Fixed (rather than `rows / threads`) so that results are bit-identical
/// across parallelism degrees ≥ 2 (see the module docs). 4096 rows is large
/// enough to amortize per-morsel state setup and small enough that the tiny
/// scale factors used by the test suite still produce several morsels.
pub const MORSEL_ROWS: usize = 4096;

/// A contiguous range of logical row positions, `start..end`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Morsel {
    /// First logical row (inclusive).
    pub start: usize,
    /// One past the last logical row.
    pub end: usize,
}

impl Morsel {
    /// Number of rows in the morsel.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the morsel covers no rows.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// The row range as an iterator-friendly `Range`.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

/// Cuts `total` rows into contiguous morsels of `morsel_rows` rows each
/// (the last morsel may be shorter). `total == 0` yields no morsels.
pub fn morsels(total: usize, morsel_rows: usize) -> Vec<Morsel> {
    assert!(morsel_rows > 0, "morsel size must be positive");
    let mut out = Vec::with_capacity(total.div_ceil(morsel_rows));
    let mut start = 0;
    while start < total {
        let end = (start + morsel_rows).min(total);
        out.push(Morsel { start, end });
        start = end;
    }
    out
}

/// Merges pre-sorted runs into one sorted sequence — the deterministic merge
/// step of the morsel-parallel sort.
///
/// Each run must already be sorted under `cmp` (workers stable-sort one
/// morsel each). Two properties make the merge reproduce the **serial stable
/// sort** of the concatenated input exactly, and therefore make the parallel
/// sort bit-identical to the serial one (the DESIGN.md §3 contract):
///
/// 1. **Ties break toward the earlier run.** Runs are per-morsel and morsels
///    are in index order, so an earlier run holds earlier original positions;
///    favoring it on `Ordering::Equal` is exactly what a stable sort of the
///    whole input would do.
/// 2. **The merge tree is a function of the run boundaries alone.** Runs are
///    merged pairwise in balanced rounds on the caller's thread; the worker
///    count never shapes the tree (`O(n log r)` for `n` items in `r` runs).
pub fn merge_sorted_runs<T>(
    mut runs: Vec<Vec<T>>,
    cmp: &(impl Fn(&T, &T) -> std::cmp::Ordering + ?Sized),
) -> Vec<T> {
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(merge_two(a, b, cmp)),
                None => next.push(a),
            }
        }
        runs = next;
    }
    runs.pop().unwrap_or_default()
}

/// Stable two-way merge: `a` precedes `b` in run order, so it wins ties.
fn merge_two<T>(
    a: Vec<T>,
    b: Vec<T>,
    cmp: &(impl Fn(&T, &T) -> std::cmp::Ordering + ?Sized),
) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ai = a.into_iter().peekable();
    let mut bi = b.into_iter().peekable();
    loop {
        match (ai.peek(), bi.peek()) {
            (Some(x), Some(y)) => {
                if cmp(x, y) != std::cmp::Ordering::Greater {
                    out.push(ai.next().expect("peeked"));
                } else {
                    out.push(bi.next().expect("peeked"));
                }
            }
            (Some(_), None) => {
                out.extend(ai);
                break;
            }
            (None, _) => {
                out.extend(bi);
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cover_all_rows_without_overlap() {
        for total in [0usize, 1, 4095, 4096, 4097, 10_000, 65_536] {
            let ms = morsels(total, MORSEL_ROWS);
            let covered: usize = ms.iter().map(Morsel::len).sum();
            assert_eq!(covered, total);
            let mut cursor = 0;
            for m in &ms {
                assert_eq!(m.start, cursor, "contiguous");
                assert!(m.len() <= MORSEL_ROWS);
                assert!(!m.is_empty());
                cursor = m.end;
            }
            assert_eq!(cursor, total);
        }
    }

    #[test]
    fn boundaries_do_not_depend_on_worker_count() {
        // The whole determinism contract rests on this: the partition is a
        // function of the row count alone.
        let a = morsels(100_000, MORSEL_ROWS);
        let b = morsels(100_000, MORSEL_ROWS);
        assert_eq!(a, b);
    }

    #[test]
    fn last_morsel_short() {
        let ms = morsels(MORSEL_ROWS + 7, MORSEL_ROWS);
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[1].len(), 7);
        assert_eq!(ms[1].range(), MORSEL_ROWS..MORSEL_ROWS + 7);
    }

    #[test]
    #[should_panic(expected = "morsel size must be positive")]
    fn zero_morsel_size_rejected() {
        morsels(10, 0);
    }

    /// The k-way merge of per-morsel stable sorts must equal the stable sort
    /// of the whole input — this equality is what makes the parallel sort
    /// path bit-identical to the serial one.
    #[test]
    fn merge_of_stable_runs_equals_stable_sort() {
        // Keys with many duplicates so tie-breaking is actually exercised;
        // payload = original position, which stability must preserve.
        let total = 10_007;
        let items: Vec<(u32, u32)> = (0..total).map(|i| ((i * 31 % 13) as u32, i as u32)).collect();
        let cmp = |a: &(u32, u32), b: &(u32, u32)| a.0.cmp(&b.0); // keys only
        let mut expect = items.clone();
        expect.sort_by(cmp); // std stable sort
        for run_len in [1usize, 7, 64, 4096, 20_000] {
            let runs: Vec<Vec<(u32, u32)>> = morsels(total, run_len)
                .iter()
                .map(|m| {
                    let mut run = items[m.range()].to_vec();
                    run.sort_by(cmp);
                    run
                })
                .collect();
            assert_eq!(merge_sorted_runs(runs, &cmp), expect, "run_len {run_len}");
        }
    }

    #[test]
    fn merge_edge_cases() {
        let cmp = |a: &i32, b: &i32| a.cmp(b);
        assert!(merge_sorted_runs(Vec::<Vec<i32>>::new(), &cmp).is_empty());
        assert_eq!(merge_sorted_runs(vec![vec![1, 2, 3]], &cmp), vec![1, 2, 3]);
        assert_eq!(
            merge_sorted_runs(vec![vec![], vec![2], vec![], vec![1, 3]], &cmp),
            vec![1, 2, 3]
        );
    }
}
