//! Data partitioning on primary and foreign keys (Section 3.2.1).
//!
//! At load time LegoBase builds, per annotated key:
//!
//! * a **1D array** indexed by single-attribute integer primary keys
//!   ([`PrimaryKeyIndex`]) — sparse ranges trade memory for direct access;
//! * a **2D partitioned table** for foreign keys (and composite primary keys):
//!   one bucket of row ids per key value ([`ForeignKeyPartition`], stored in
//!   CSR form so bucket access is two loads, exactly the
//!   `lineitem_table[O_ORDERKEY]` access of Fig. 10).
//!
//! The module also hosts the **fixed radix partitioning** of the
//! morsel-parallel hash-join build ([`join_partition`], [`JOIN_PARTITIONS`]):
//! build-side rows are scattered into key-disjoint sub-tables whose layout
//! depends only on the keys and the morsel order, never on the worker count.

use crate::metrics;

/// Radix width of the fixed partitioning used by the morsel-parallel
/// hash-join build: build-side rows are scattered into `2^JOIN_RADIX_BITS`
/// disjoint sub-tables keyed by [`join_partition`].
///
/// The partition count is a **constant**, never derived from the worker
/// count: the sub-table a row lands in — and hence every chain order a probe
/// can observe — depends only on the key, which is half of the join
/// determinism contract (DESIGN.md §3; the other half is that each
/// sub-table is filled in morsel-index order).
pub const JOIN_RADIX_BITS: u32 = 6;

/// Number of build-side partitions of the morsel-parallel hash join.
pub const JOIN_PARTITIONS: usize = 1 << JOIN_RADIX_BITS;

/// Radix partition of a packed join key.
///
/// Uses the *top* bits of the same multiplicative hash the lowered hash
/// structures use for bucket selection (which consume low/middle bits), so
/// rows that collide into one partition still spread across that sub-table's
/// buckets.
#[inline(always)]
pub fn join_partition(key: u64) -> usize {
    (crate::specialized::hash_u64(key) >> (64 - JOIN_RADIX_BITS)) as usize
}

/// 1D array over a single-attribute integer primary key.
///
/// `lookup(key)` returns the unique row holding that key, in O(1) and without
/// hashing. Keys outside `[min, max]` simply miss.
#[derive(Clone, Debug)]
pub struct PrimaryKeyIndex {
    min: i64,
    /// `slot[key - min]` is `row + 1`, or 0 when the key is absent.
    slots: Vec<u32>,
}

impl PrimaryKeyIndex {
    /// Builds the index from the key column.
    ///
    /// # Panics
    /// Panics on duplicate keys — the schema annotation promised a primary key.
    pub fn build(keys: &[i64]) -> PrimaryKeyIndex {
        let (&min, &max) = match (keys.iter().min(), keys.iter().max()) {
            (Some(a), Some(b)) => (a, b),
            _ => return PrimaryKeyIndex { min: 0, slots: Vec::new() },
        };
        // The sparse trade-off of the paper: allocate the full value range.
        let mut slots = vec![0u32; (max - min + 1) as usize];
        for (row, &k) in keys.iter().enumerate() {
            let slot = &mut slots[(k - min) as usize];
            assert_eq!(*slot, 0, "duplicate primary key {k}");
            *slot = row as u32 + 1;
        }
        PrimaryKeyIndex { min, slots }
    }

    /// Returns the row id holding `key`, if present.
    #[inline(always)]
    pub fn lookup(&self, key: i64) -> Option<u32> {
        let idx = key.checked_sub(self.min)? as usize;
        match self.slots.get(idx) {
            Some(&slot) if slot != 0 => Some(slot - 1),
            _ => None,
        }
    }

    /// Fraction of allocated slots actually used (memory-trade-off metric).
    pub fn density(&self) -> f64 {
        if self.slots.is_empty() {
            return 1.0;
        }
        let used = self.slots.iter().filter(|&&s| s != 0).count();
        used as f64 / self.slots.len() as f64
    }

    /// Approximate resident bytes (Fig. 20 accounting).
    pub fn approx_bytes(&self) -> usize {
        self.slots.capacity() * 4
    }
}

/// 2D partitioned table over an integer foreign key, in CSR layout.
#[derive(Clone, Debug)]
pub struct ForeignKeyPartition {
    min: i64,
    /// `offsets[k - min] .. offsets[k - min + 1]` delimits the bucket of `k`.
    offsets: Vec<u32>,
    /// Row ids, grouped by key value.
    rows: Vec<u32>,
}

impl ForeignKeyPartition {
    /// Builds the partition from the foreign-key column with a two-pass
    /// counting sort (the repartitioning step of data loading).
    pub fn build(keys: &[i64]) -> ForeignKeyPartition {
        let (&min, &max) = match (keys.iter().min(), keys.iter().max()) {
            (Some(a), Some(b)) => (a, b),
            _ => return ForeignKeyPartition { min: 0, offsets: vec![0], rows: Vec::new() },
        };
        let nbuckets = (max - min + 1) as usize;
        let mut offsets = vec![0u32; nbuckets + 1];
        for &k in keys {
            offsets[(k - min) as usize + 1] += 1;
        }
        for i in 0..nbuckets {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut rows = vec![0u32; keys.len()];
        for (row, &k) in keys.iter().enumerate() {
            let b = (k - min) as usize;
            rows[cursor[b] as usize] = row as u32;
            cursor[b] += 1;
        }
        ForeignKeyPartition { min, offsets, rows }
    }

    /// All rows whose foreign key equals `key` — the partitioned join access
    /// path of Fig. 10.
    #[inline(always)]
    pub fn bucket(&self, key: i64) -> &[u32] {
        metrics::hash_probe();
        let idx = match key.checked_sub(self.min) {
            Some(i) if (i as usize) < self.offsets.len() - 1 => i as usize,
            _ => return &[],
        };
        let lo = self.offsets[idx] as usize;
        let hi = self.offsets[idx + 1] as usize;
        &self.rows[lo..hi]
    }

    /// Number of distinct key slots allocated.
    pub fn bucket_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Approximate resident bytes (Fig. 20 accounting).
    pub fn approx_bytes(&self) -> usize {
        self.offsets.capacity() * 4 + self.rows.capacity() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn pk_index_direct_access() {
        let keys = vec![5i64, 3, 9, 4];
        let idx = PrimaryKeyIndex::build(&keys);
        assert_eq!(idx.lookup(5), Some(0));
        assert_eq!(idx.lookup(3), Some(1));
        assert_eq!(idx.lookup(9), Some(2));
        assert_eq!(idx.lookup(6), None); // hole in the sparse range
        assert_eq!(idx.lookup(2), None); // below min
        assert_eq!(idx.lookup(100), None); // above max
        assert!((idx.density() - 4.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "duplicate primary key")]
    fn pk_duplicates_rejected() {
        PrimaryKeyIndex::build(&[1, 2, 1]);
    }

    #[test]
    fn pk_empty() {
        let idx = PrimaryKeyIndex::build(&[]);
        assert_eq!(idx.lookup(0), None);
    }

    #[test]
    fn fk_partition_matches_hash_grouping() {
        let keys = vec![2i64, 7, 2, 9, 7, 2, 11];
        let part = ForeignKeyPartition::build(&keys);
        let mut model: HashMap<i64, Vec<u32>> = HashMap::new();
        for (row, &k) in keys.iter().enumerate() {
            model.entry(k).or_default().push(row as u32);
        }
        for key in 0..=12i64 {
            let mut got = part.bucket(key).to_vec();
            got.sort_unstable();
            let want = model.get(&key).cloned().unwrap_or_default();
            assert_eq!(got, want, "bucket mismatch for key {key}");
        }
        assert_eq!(part.bucket_count(), 10); // range [2, 11]
        assert!(part.approx_bytes() > 0);
    }

    #[test]
    fn fk_empty() {
        let part = ForeignKeyPartition::build(&[]);
        assert_eq!(part.bucket(0), &[] as &[u32]);
    }

    /// The radix partition function must stay in range, be deterministic,
    /// and actually spread sequential keys (TPC-H join keys are dense
    /// integers — a partitioner that lumped them together would serialize
    /// the parallel build).
    #[test]
    fn join_partition_in_range_and_spreading() {
        let mut hit = [false; JOIN_PARTITIONS];
        for key in 0..10_000u64 {
            let p = join_partition(key);
            assert!(p < JOIN_PARTITIONS);
            assert_eq!(p, join_partition(key), "deterministic");
            hit[p] = true;
        }
        let used = hit.iter().filter(|&&h| h).count();
        assert_eq!(used, JOIN_PARTITIONS, "sequential keys must reach every partition");
    }
}
