//! Columnar layout: the result of the `ColumnStore` transformer (Section 3.3).
//!
//! The transformer converts an *array of records* (row layout) into a *record
//! of arrays* (column layout). [`ColumnTable`] is that record of arrays:
//! every attribute is a dense native vector, string attributes optionally
//! dictionary-encoded. Unused attributes can simply be dropped at conversion
//! time (unused-field removal, Section 3.6.1) — the corresponding column is
//! never materialized.

use crate::date::Date;
use crate::dict::{DictKind, StringDictionary};
use crate::packed::{PackedCursor, PackedInts};
use crate::row::RowTable;
use crate::schema::{Schema, Type};
use crate::stats::ColumnStats;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// One attribute stored as a dense native vector.
///
/// The payload vectors are reference-counted so that query intermediates
/// (chunks in the specialized executor) can share base-table columns without
/// copying, and so compiled kernels can capture exactly the vector they read.
#[derive(Clone, Debug)]
pub enum Column {
    /// Integer column.
    I64(Arc<Vec<i64>>),
    /// Float column.
    F64(Arc<Vec<f64>>),
    /// Dates stored as raw day counts so scans compare plain `i32`s.
    Date(Arc<Vec<i32>>),
    /// Plain (non-dictionary) strings.
    Str(Arc<Vec<String>>),
    /// Dictionary-encoded strings: per-row codes plus the shared dictionary.
    Dict(Arc<Vec<u32>>, Arc<StringDictionary>),
    /// Boolean column.
    Bool(Arc<Vec<bool>>),
    /// Frame-of-reference bit-packed integers (PR 7): kernels scan the packed
    /// words directly, comparing pre-encoded literals against raw offsets.
    I64Packed(Arc<PackedInts>),
    /// Bit-packed day counts — dates span tiny ranges, so this is the
    /// highest-leverage encoding on TPC-H.
    DatePacked(Arc<PackedInts>),
    /// Dictionary strings whose codes are themselves bit-packed: predicates
    /// still evaluate on codes (never the strings), now at `log2(|dict|)`
    /// bits per row instead of 32.
    DictPacked(Arc<PackedInts>, Arc<StringDictionary>),
    /// A dropped column (unused-field removal): schema position is kept so
    /// attribute indices remain stable, but no data is materialized.
    Absent,
}

/// Typed error for the sealed accessor layer: callers that used to
/// pattern-match raw `Arc<Vec<_>>` payloads (and panic, or silently read a
/// zero length, on [`Column::Absent`]) now get a diagnosable error instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ColumnError {
    /// The column was removed by unused-field elimination.
    Absent,
    /// The column's physical layout does not match the requested reader.
    TypeMismatch {
        /// The reader the caller asked for.
        expected: &'static str,
        /// The column's actual layout.
        found: &'static str,
    },
}

impl fmt::Display for ColumnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnError::Absent => {
                write!(f, "access to a column removed by unused-field elimination")
            }
            ColumnError::TypeMismatch { expected, found } => {
                write!(f, "expected {expected} column, found {found}")
            }
        }
    }
}

impl std::error::Error for ColumnError {}

/// Typed cursor over an integer column, plain or packed. The enum dispatch
/// happens once per kernel compilation; `get` is a branch plus either an
/// indexed load or a two-word bit extract.
#[derive(Clone, Copy, Debug)]
pub enum I64Reader<'a> {
    /// Uncompressed payload.
    Plain(&'a [i64]),
    /// Frame-of-reference packed payload.
    Packed(&'a PackedInts),
}

impl I64Reader<'_> {
    /// The value at `row`.
    #[inline]
    pub fn get(&self, row: usize) -> i64 {
        match self {
            I64Reader::Plain(v) => v[row],
            I64Reader::Packed(p) => p.get(row),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            I64Reader::Plain(v) => v.len(),
            I64Reader::Packed(p) => p.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Typed cursor over a date column (day counts), plain or packed.
#[derive(Clone, Copy, Debug)]
pub enum DateReader<'a> {
    /// Uncompressed day counts.
    Plain(&'a [i32]),
    /// Frame-of-reference packed day counts, read through a prepared
    /// [`PackedCursor`] so scattered probes (date-index candidate filtering)
    /// pay no per-call setup.
    Packed(PackedCursor<'a>),
}

impl DateReader<'_> {
    /// The day count at `row`.
    #[inline]
    pub fn get(&self, row: usize) -> i32 {
        match self {
            DateReader::Plain(v) => v[row],
            DateReader::Packed(c) => c.get(row) as i32,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            DateReader::Plain(v) => v.len(),
            DateReader::Packed(c) => c.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Typed cursor over dictionary codes, plain or packed.
#[derive(Clone, Copy, Debug)]
pub enum CodeReader<'a> {
    /// Uncompressed 32-bit codes.
    Plain(&'a [u32]),
    /// Bit-packed codes.
    Packed(&'a PackedInts),
}

impl CodeReader<'_> {
    /// The dictionary code at `row`.
    #[inline]
    pub fn get(&self, row: usize) -> u32 {
        match self {
            CodeReader::Plain(v) => v[row],
            CodeReader::Packed(p) => p.get(row) as u32,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            CodeReader::Plain(v) => v.len(),
            CodeReader::Packed(p) => p.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Column {
    /// Number of values.
    ///
    /// [`Column::Absent`] reports 0 for backward compatibility; callers that
    /// must distinguish "empty" from "removed" use [`Column::try_len`].
    pub fn len(&self) -> usize {
        self.try_len().unwrap_or(0)
    }

    /// Number of values, or a typed error for a removed column (the `Absent`
    /// blind spot: `len() == 0` silently conflates pruned with empty).
    pub fn try_len(&self) -> Result<usize, ColumnError> {
        match self {
            Column::I64(v) => Ok(v.len()),
            Column::F64(v) => Ok(v.len()),
            Column::Date(v) => Ok(v.len()),
            Column::Str(v) => Ok(v.len()),
            Column::Dict(v, _) => Ok(v.len()),
            Column::Bool(v) => Ok(v.len()),
            Column::I64Packed(p) => Ok(p.len()),
            Column::DatePacked(p) => Ok(p.len()),
            Column::DictPacked(p, _) => Ok(p.len()),
            Column::Absent => Err(ColumnError::Absent),
        }
    }

    /// True when the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Typed accessors: the optimized engine works on these slices directly,
    /// which is the Rust rendering of the paper's generated C loops.
    pub fn as_i64(&self) -> &[i64] {
        match self {
            Column::I64(v) => v,
            other => panic!("expected I64 column, found {}", other.kind_name()),
        }
    }

    /// The float data (panics on other layouts).
    pub fn as_f64(&self) -> &[f64] {
        match self {
            Column::F64(v) => v,
            other => panic!("expected F64 column, found {}", other.kind_name()),
        }
    }

    /// The date day-counts (panics on other layouts).
    pub fn as_date(&self) -> &[i32] {
        match self {
            Column::Date(v) => v,
            other => panic!("expected Date column, found {}", other.kind_name()),
        }
    }

    /// The raw strings (panics on other layouts).
    pub fn as_str(&self) -> &[String] {
        match self {
            Column::Str(v) => v,
            other => panic!("expected Str column, found {}", other.kind_name()),
        }
    }

    /// The dictionary codes and their dictionary (panics otherwise).
    pub fn as_dict(&self) -> (&[u32], &StringDictionary) {
        match self {
            Column::Dict(v, d) => (v, d),
            other => panic!("expected Dict column, found {}", other.kind_name()),
        }
    }

    /// Name of the physical layout (diagnostics and typed errors).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Column::I64(_) => "I64",
            Column::F64(_) => "F64",
            Column::Date(_) => "Date",
            Column::Str(_) => "Str",
            Column::Dict(..) => "Dict",
            Column::Bool(_) => "Bool",
            Column::I64Packed(_) => "I64Packed",
            Column::DatePacked(_) => "DatePacked",
            Column::DictPacked(..) => "DictPacked",
            Column::Absent => "Absent",
        }
    }

    /// Typed cursor over an integer column (plain or packed).
    pub fn i64_reader(&self) -> Result<I64Reader<'_>, ColumnError> {
        match self {
            Column::I64(v) => Ok(I64Reader::Plain(v)),
            Column::I64Packed(p) => Ok(I64Reader::Packed(p)),
            Column::Absent => Err(ColumnError::Absent),
            other => Err(ColumnError::TypeMismatch { expected: "I64", found: other.kind_name() }),
        }
    }

    /// Typed cursor over a date column (plain or packed).
    pub fn date_reader(&self) -> Result<DateReader<'_>, ColumnError> {
        match self {
            Column::Date(v) => Ok(DateReader::Plain(v)),
            Column::DatePacked(p) => Ok(DateReader::Packed(p.cursor())),
            Column::Absent => Err(ColumnError::Absent),
            other => Err(ColumnError::TypeMismatch { expected: "Date", found: other.kind_name() }),
        }
    }

    /// Typed cursor over dictionary codes plus the shared dictionary
    /// (plain or packed codes).
    pub fn dict_reader(&self) -> Result<(CodeReader<'_>, &StringDictionary), ColumnError> {
        match self {
            Column::Dict(v, d) => Ok((CodeReader::Plain(v), d)),
            Column::DictPacked(p, d) => Ok((CodeReader::Packed(p), d)),
            Column::Absent => Err(ColumnError::Absent),
            other => Err(ColumnError::TypeMismatch { expected: "Dict", found: other.kind_name() }),
        }
    }

    /// Reads one cell back into the generic representation (used at pipeline
    /// boundaries, e.g. when producing final results).
    pub fn value_at(&self, row: usize) -> Value {
        match self {
            Column::I64(v) => Value::Int(v[row]),
            Column::F64(v) => Value::Float(v[row]),
            Column::Date(v) => Value::Date(Date(v[row])),
            Column::Str(v) => Value::Str(v[row].clone()),
            Column::Dict(v, d) => Value::Str(d.decode(v[row]).to_string()),
            Column::Bool(v) => Value::Bool(v[row]),
            Column::I64Packed(p) => Value::Int(p.get(row)),
            Column::DatePacked(p) => Value::Date(Date(p.get(row) as i32)),
            Column::DictPacked(p, d) => Value::Str(d.decode(p.get(row) as u32).to_string()),
            Column::Absent => panic!("access to a column removed by unused-field elimination"),
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        match self {
            Column::I64(v) => v.capacity() * 8,
            Column::F64(v) => v.capacity() * 8,
            Column::Date(v) => v.capacity() * 4,
            Column::Str(v) => v.iter().map(|s| s.capacity() + 24).sum(),
            Column::Dict(v, d) => v.capacity() * 4 + d.approx_bytes(),
            Column::Bool(v) => v.capacity(),
            Column::I64Packed(p) => p.approx_bytes(),
            Column::DatePacked(p) => p.approx_bytes(),
            Column::DictPacked(p, d) => p.approx_bytes() + d.approx_bytes(),
            Column::Absent => 0,
        }
    }

    /// The encoding chooser: re-encodes this column into its packed variant
    /// when the catalog statistics say packing pays for itself, or returns
    /// `None` to keep the current layout.
    ///
    /// The decision is driven by the PR 5 statistics (`min`/`max` bound the
    /// frame-of-reference width before any data is scanned); the packing
    /// itself always derives base/width from the actual values, so a stale
    /// catalog can only cost the shortcut, never correctness.
    pub fn encode(&self, stats: &ColumnStats) -> Option<Column> {
        // Statistics shortcut: a known min/max whose span already needs
        // (nearly) full width cannot profit from packing.
        if let (Some(Value::Int(lo)), Some(Value::Int(hi))) = (&stats.min, &stats.max) {
            if hi.wrapping_sub(*lo) as u64 > u64::MAX >> 8 {
                return None;
            }
        }
        match self {
            Column::I64(v) => {
                let p = PackedInts::from_values(v);
                (p.approx_bytes() < v.capacity() * 8).then(|| Column::I64Packed(Arc::new(p)))
            }
            Column::Date(v) => {
                let days: Vec<i64> = v.iter().map(|&d| d as i64).collect();
                let p = PackedInts::from_values(&days);
                (p.approx_bytes() < v.capacity() * 4).then(|| Column::DatePacked(Arc::new(p)))
            }
            Column::Dict(codes, dict) => {
                let wide: Vec<i64> = codes.iter().map(|&c| c as i64).collect();
                let p = PackedInts::from_values(&wide);
                (p.approx_bytes() < codes.capacity() * 4)
                    .then(|| Column::DictPacked(Arc::new(p), Arc::clone(dict)))
            }
            _ => None,
        }
    }

    /// The inverse of [`Column::encode`]: materializes the plain layout.
    /// Encoded variants decode to fresh vectors; plain variants clone the
    /// `Arc` (no copy). Used by gather paths that build new columns and by
    /// the equivalence tests.
    pub fn decode(&self) -> Column {
        match self {
            Column::I64Packed(p) => Column::I64(Arc::new(p.iter().collect())),
            Column::DatePacked(p) => Column::Date(Arc::new(p.iter().map(|v| v as i32).collect())),
            Column::DictPacked(p, d) => {
                Column::Dict(Arc::new(p.iter().map(|v| v as u32).collect()), Arc::clone(d))
            }
            other => other.clone(),
        }
    }
}

/// Per-attribute conversion policy when building a [`ColumnTable`].
#[derive(Clone, Debug, Default)]
pub struct ColumnSpec {
    /// Attributes to dictionary-encode, with the dictionary kind chosen by the
    /// `StringDictionary` transformer.
    pub dictionaries: Vec<(usize, DictKind)>,
    /// Attributes referenced by the query; everything else becomes
    /// [`Column::Absent`]. `None` keeps all attributes.
    pub used: Option<Vec<usize>>,
}

/// A table in columnar layout (record of arrays).
#[derive(Clone, Debug)]
pub struct ColumnTable {
    /// Relation schema (absent columns keep their field entry).
    pub schema: Schema,
    /// Row count.
    pub len: usize,
    /// One column per schema field (`Absent` when pruned).
    pub columns: Vec<Column>,
}

impl ColumnTable {
    /// Converts a row-layout table, applying dictionary encoding and
    /// unused-field removal according to `spec`.
    pub fn from_rows(table: &RowTable, spec: &ColumnSpec) -> ColumnTable {
        let n = table.len();
        let keep = |idx: usize| spec.used.as_ref().is_none_or(|u| u.contains(&idx));
        let mut columns = Vec::with_capacity(table.schema.len());
        for (idx, field) in table.schema.fields.iter().enumerate() {
            if !keep(idx) {
                columns.push(Column::Absent);
                continue;
            }
            let dict_kind = spec.dictionaries.iter().find(|(i, _)| *i == idx).map(|(_, k)| *k);
            let col = match (field.ty, dict_kind) {
                (Type::Int, _) => {
                    Column::I64(Arc::new(table.rows.iter().map(|r| r[idx].as_int()).collect()))
                }
                (Type::Float, _) => {
                    Column::F64(Arc::new(table.rows.iter().map(|r| r[idx].as_float()).collect()))
                }
                (Type::Date, _) => {
                    Column::Date(Arc::new(table.rows.iter().map(|r| r[idx].as_date().0).collect()))
                }
                (Type::Bool, _) => {
                    Column::Bool(Arc::new(table.rows.iter().map(|r| r[idx].as_bool()).collect()))
                }
                (Type::Str, None) => Column::Str(Arc::new(
                    table.rows.iter().map(|r| r[idx].as_str().to_string()).collect(),
                )),
                (Type::Str, Some(kind)) => {
                    let dict =
                        StringDictionary::build(kind, table.rows.iter().map(|r| r[idx].as_str()));
                    let codes = table
                        .rows
                        .iter()
                        .map(|r| dict.code(r[idx].as_str()).expect("value seen during build"))
                        .collect();
                    Column::Dict(Arc::new(codes), Arc::new(dict))
                }
            };
            columns.push(col);
        }
        ColumnTable { schema: table.schema.clone(), len: n, columns }
    }

    /// The column at `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Column lookup by attribute name.
    pub fn by_name(&self, name: &str) -> &Column {
        &self.columns[self.schema.col(name)]
    }

    /// Approximate heap footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.columns.iter().map(Column::approx_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;

    fn sample() -> RowTable {
        let schema = Schema::new(vec![
            Field::new("k", Type::Int),
            Field::new("p", Type::Float),
            Field::new("mode", Type::Str),
            Field::new("d", Type::Date),
        ]);
        let mut t = RowTable::new(schema);
        for i in 0..10i64 {
            t.push(vec![
                Value::Int(i),
                Value::Float(i as f64 * 1.5),
                Value::from(if i % 2 == 0 { "MAIL" } else { "SHIP" }),
                Value::Date(Date::from_ymd(1995, 1, 1 + i as u32)),
            ]);
        }
        t
    }

    #[test]
    fn conversion_roundtrip() {
        let rows = sample();
        let ct = ColumnTable::from_rows(&rows, &ColumnSpec::default());
        assert_eq!(ct.len, 10);
        for (r, row) in rows.rows.iter().enumerate() {
            for (c, expected) in row.iter().enumerate().take(rows.schema.len()) {
                assert_eq!(&ct.columns[c].value_at(r), expected);
            }
        }
        assert_eq!(ct.by_name("k").as_i64()[3], 3);
        assert_eq!(ct.by_name("d").as_date().len(), 10);
    }

    #[test]
    fn dictionary_encoding() {
        let rows = sample();
        let spec = ColumnSpec { dictionaries: vec![(2, DictKind::Normal)], used: None };
        let ct = ColumnTable::from_rows(&rows, &spec);
        let (codes, dict) = ct.by_name("mode").as_dict();
        assert_eq!(dict.len(), 2);
        for (r, row) in rows.rows.iter().enumerate() {
            assert_eq!(dict.decode(codes[r]), row[2].as_str());
        }
    }

    #[test]
    fn unused_field_removal() {
        let rows = sample();
        let spec = ColumnSpec { dictionaries: vec![], used: Some(vec![0, 3]) };
        let ct = ColumnTable::from_rows(&rows, &spec);
        assert!(matches!(ct.columns[1], Column::Absent));
        assert!(matches!(ct.columns[2], Column::Absent));
        assert!(
            ct.approx_bytes()
                < ColumnTable::from_rows(&rows, &ColumnSpec::default()).approx_bytes()
        );
    }

    #[test]
    #[should_panic(expected = "unused-field elimination")]
    fn absent_access_panics() {
        let rows = sample();
        let spec = ColumnSpec { dictionaries: vec![], used: Some(vec![0]) };
        let ct = ColumnTable::from_rows(&rows, &spec);
        ct.columns[1].value_at(0);
    }

    #[test]
    fn absent_reports_typed_errors() {
        let col = Column::Absent;
        assert_eq!(col.try_len(), Err(ColumnError::Absent));
        assert!(matches!(col.i64_reader(), Err(ColumnError::Absent)));
        assert!(matches!(col.date_reader(), Err(ColumnError::Absent)));
        assert!(matches!(col.dict_reader(), Err(ColumnError::Absent)));
        // Mismatched layouts name both sides.
        let f = Column::F64(Arc::new(vec![1.0]));
        assert_eq!(
            f.i64_reader().unwrap_err(),
            ColumnError::TypeMismatch { expected: "I64", found: "F64" }
        );
    }

    #[test]
    fn encode_roundtrips_through_readers() {
        let rows = sample();
        let spec = ColumnSpec { dictionaries: vec![(2, DictKind::Normal)], used: None };
        let ct = ColumnTable::from_rows(&rows, &spec);
        let stats = crate::stats::ColumnStats::new(0, None, None);
        for col in &ct.columns {
            let Some(enc) = col.encode(&stats) else { continue };
            assert!(enc.approx_bytes() < col.approx_bytes(), "{} must shrink", col.kind_name());
            assert_eq!(enc.len(), col.len());
            for r in 0..col.len() {
                assert_eq!(enc.value_at(r), col.value_at(r), "row {r}");
            }
            // decode() restores the plain layout bit-identically.
            let dec = enc.decode();
            assert_eq!(dec.kind_name(), col.kind_name());
            for r in 0..col.len() {
                assert_eq!(dec.value_at(r), col.value_at(r));
            }
        }
        // The sample's int/date/dict columns all encode.
        assert!(ct.columns[0].encode(&stats).is_some());
        assert!(ct.columns[2].encode(&stats).is_some());
        assert!(ct.columns[3].encode(&stats).is_some());
    }

    #[test]
    fn readers_agree_with_plain_access() {
        let rows = sample();
        let spec = ColumnSpec { dictionaries: vec![(2, DictKind::Normal)], used: None };
        let ct = ColumnTable::from_rows(&rows, &spec);
        let stats = crate::stats::ColumnStats::new(0, None, None);
        let k = &ct.columns[0];
        let ek = k.encode(&stats).unwrap();
        let (kr, ekr) = (k.i64_reader().unwrap(), ek.i64_reader().unwrap());
        let d = &ct.columns[3];
        let ed = d.encode(&stats).unwrap();
        let (dr, edr) = (d.date_reader().unwrap(), ed.date_reader().unwrap());
        let m = &ct.columns[2];
        let em = m.encode(&stats).unwrap();
        let ((mr, dict), (emr, edict)) = (m.dict_reader().unwrap(), em.dict_reader().unwrap());
        assert_eq!(dict.len(), edict.len());
        for r in 0..ct.len {
            assert_eq!(kr.get(r), ekr.get(r));
            assert_eq!(dr.get(r), edr.get(r));
            assert_eq!(mr.get(r), emr.get(r));
        }
    }
}
