//! Columnar layout: the result of the `ColumnStore` transformer (Section 3.3).
//!
//! The transformer converts an *array of records* (row layout) into a *record
//! of arrays* (column layout). [`ColumnTable`] is that record of arrays:
//! every attribute is a dense native vector, string attributes optionally
//! dictionary-encoded. Unused attributes can simply be dropped at conversion
//! time (unused-field removal, Section 3.6.1) — the corresponding column is
//! never materialized.

use crate::date::Date;
use crate::dict::{DictKind, StringDictionary};
use crate::row::RowTable;
use crate::schema::{Schema, Type};
use crate::value::Value;
use std::sync::Arc;

/// One attribute stored as a dense native vector.
///
/// The payload vectors are reference-counted so that query intermediates
/// (chunks in the specialized executor) can share base-table columns without
/// copying, and so compiled kernels can capture exactly the vector they read.
#[derive(Clone, Debug)]
pub enum Column {
    /// Integer column.
    I64(Arc<Vec<i64>>),
    /// Float column.
    F64(Arc<Vec<f64>>),
    /// Dates stored as raw day counts so scans compare plain `i32`s.
    Date(Arc<Vec<i32>>),
    /// Plain (non-dictionary) strings.
    Str(Arc<Vec<String>>),
    /// Dictionary-encoded strings: per-row codes plus the shared dictionary.
    Dict(Arc<Vec<u32>>, Arc<StringDictionary>),
    /// Boolean column.
    Bool(Arc<Vec<bool>>),
    /// A dropped column (unused-field removal): schema position is kept so
    /// attribute indices remain stable, but no data is materialized.
    Absent,
}

impl Column {
    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            Column::I64(v) => v.len(),
            Column::F64(v) => v.len(),
            Column::Date(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Dict(v, _) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Absent => 0,
        }
    }

    /// True when the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Typed accessors: the optimized engine works on these slices directly,
    /// which is the Rust rendering of the paper's generated C loops.
    pub fn as_i64(&self) -> &[i64] {
        match self {
            Column::I64(v) => v,
            other => panic!("expected I64 column, found {}", other.kind_name()),
        }
    }

    /// The float data (panics on other layouts).
    pub fn as_f64(&self) -> &[f64] {
        match self {
            Column::F64(v) => v,
            other => panic!("expected F64 column, found {}", other.kind_name()),
        }
    }

    /// The date day-counts (panics on other layouts).
    pub fn as_date(&self) -> &[i32] {
        match self {
            Column::Date(v) => v,
            other => panic!("expected Date column, found {}", other.kind_name()),
        }
    }

    /// The raw strings (panics on other layouts).
    pub fn as_str(&self) -> &[String] {
        match self {
            Column::Str(v) => v,
            other => panic!("expected Str column, found {}", other.kind_name()),
        }
    }

    /// The dictionary codes and their dictionary (panics otherwise).
    pub fn as_dict(&self) -> (&[u32], &StringDictionary) {
        match self {
            Column::Dict(v, d) => (v, d),
            other => panic!("expected Dict column, found {}", other.kind_name()),
        }
    }

    fn kind_name(&self) -> &'static str {
        match self {
            Column::I64(_) => "I64",
            Column::F64(_) => "F64",
            Column::Date(_) => "Date",
            Column::Str(_) => "Str",
            Column::Dict(..) => "Dict",
            Column::Bool(_) => "Bool",
            Column::Absent => "Absent",
        }
    }

    /// Reads one cell back into the generic representation (used at pipeline
    /// boundaries, e.g. when producing final results).
    pub fn value_at(&self, row: usize) -> Value {
        match self {
            Column::I64(v) => Value::Int(v[row]),
            Column::F64(v) => Value::Float(v[row]),
            Column::Date(v) => Value::Date(Date(v[row])),
            Column::Str(v) => Value::Str(v[row].clone()),
            Column::Dict(v, d) => Value::Str(d.decode(v[row]).to_string()),
            Column::Bool(v) => Value::Bool(v[row]),
            Column::Absent => panic!("access to a column removed by unused-field elimination"),
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        match self {
            Column::I64(v) => v.capacity() * 8,
            Column::F64(v) => v.capacity() * 8,
            Column::Date(v) => v.capacity() * 4,
            Column::Str(v) => v.iter().map(|s| s.capacity() + 24).sum(),
            Column::Dict(v, d) => v.capacity() * 4 + d.approx_bytes(),
            Column::Bool(v) => v.capacity(),
            Column::Absent => 0,
        }
    }
}

/// Per-attribute conversion policy when building a [`ColumnTable`].
#[derive(Clone, Debug, Default)]
pub struct ColumnSpec {
    /// Attributes to dictionary-encode, with the dictionary kind chosen by the
    /// `StringDictionary` transformer.
    pub dictionaries: Vec<(usize, DictKind)>,
    /// Attributes referenced by the query; everything else becomes
    /// [`Column::Absent`]. `None` keeps all attributes.
    pub used: Option<Vec<usize>>,
}

/// A table in columnar layout (record of arrays).
#[derive(Clone, Debug)]
pub struct ColumnTable {
    /// Relation schema (absent columns keep their field entry).
    pub schema: Schema,
    /// Row count.
    pub len: usize,
    /// One column per schema field (`Absent` when pruned).
    pub columns: Vec<Column>,
}

impl ColumnTable {
    /// Converts a row-layout table, applying dictionary encoding and
    /// unused-field removal according to `spec`.
    pub fn from_rows(table: &RowTable, spec: &ColumnSpec) -> ColumnTable {
        let n = table.len();
        let keep = |idx: usize| spec.used.as_ref().is_none_or(|u| u.contains(&idx));
        let mut columns = Vec::with_capacity(table.schema.len());
        for (idx, field) in table.schema.fields.iter().enumerate() {
            if !keep(idx) {
                columns.push(Column::Absent);
                continue;
            }
            let dict_kind = spec.dictionaries.iter().find(|(i, _)| *i == idx).map(|(_, k)| *k);
            let col = match (field.ty, dict_kind) {
                (Type::Int, _) => {
                    Column::I64(Arc::new(table.rows.iter().map(|r| r[idx].as_int()).collect()))
                }
                (Type::Float, _) => {
                    Column::F64(Arc::new(table.rows.iter().map(|r| r[idx].as_float()).collect()))
                }
                (Type::Date, _) => {
                    Column::Date(Arc::new(table.rows.iter().map(|r| r[idx].as_date().0).collect()))
                }
                (Type::Bool, _) => {
                    Column::Bool(Arc::new(table.rows.iter().map(|r| r[idx].as_bool()).collect()))
                }
                (Type::Str, None) => Column::Str(Arc::new(
                    table.rows.iter().map(|r| r[idx].as_str().to_string()).collect(),
                )),
                (Type::Str, Some(kind)) => {
                    let dict =
                        StringDictionary::build(kind, table.rows.iter().map(|r| r[idx].as_str()));
                    let codes = table
                        .rows
                        .iter()
                        .map(|r| dict.code(r[idx].as_str()).expect("value seen during build"))
                        .collect();
                    Column::Dict(Arc::new(codes), Arc::new(dict))
                }
            };
            columns.push(col);
        }
        ColumnTable { schema: table.schema.clone(), len: n, columns }
    }

    /// The column at `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Column lookup by attribute name.
    pub fn by_name(&self, name: &str) -> &Column {
        &self.columns[self.schema.col(name)]
    }

    /// Approximate heap footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.columns.iter().map(Column::approx_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;

    fn sample() -> RowTable {
        let schema = Schema::new(vec![
            Field::new("k", Type::Int),
            Field::new("p", Type::Float),
            Field::new("mode", Type::Str),
            Field::new("d", Type::Date),
        ]);
        let mut t = RowTable::new(schema);
        for i in 0..10i64 {
            t.push(vec![
                Value::Int(i),
                Value::Float(i as f64 * 1.5),
                Value::from(if i % 2 == 0 { "MAIL" } else { "SHIP" }),
                Value::Date(Date::from_ymd(1995, 1, 1 + i as u32)),
            ]);
        }
        t
    }

    #[test]
    fn conversion_roundtrip() {
        let rows = sample();
        let ct = ColumnTable::from_rows(&rows, &ColumnSpec::default());
        assert_eq!(ct.len, 10);
        for (r, row) in rows.rows.iter().enumerate() {
            for (c, expected) in row.iter().enumerate().take(rows.schema.len()) {
                assert_eq!(&ct.columns[c].value_at(r), expected);
            }
        }
        assert_eq!(ct.by_name("k").as_i64()[3], 3);
        assert_eq!(ct.by_name("d").as_date().len(), 10);
    }

    #[test]
    fn dictionary_encoding() {
        let rows = sample();
        let spec = ColumnSpec { dictionaries: vec![(2, DictKind::Normal)], used: None };
        let ct = ColumnTable::from_rows(&rows, &spec);
        let (codes, dict) = ct.by_name("mode").as_dict();
        assert_eq!(dict.len(), 2);
        for (r, row) in rows.rows.iter().enumerate() {
            assert_eq!(dict.decode(codes[r]), row[2].as_str());
        }
    }

    #[test]
    fn unused_field_removal() {
        let rows = sample();
        let spec = ColumnSpec { dictionaries: vec![], used: Some(vec![0, 3]) };
        let ct = ColumnTable::from_rows(&rows, &spec);
        assert!(matches!(ct.columns[1], Column::Absent));
        assert!(matches!(ct.columns[2], Column::Absent));
        assert!(
            ct.approx_bytes()
                < ColumnTable::from_rows(&rows, &ColumnSpec::default()).approx_bytes()
        );
    }

    #[test]
    #[should_panic(expected = "unused-field elimination")]
    fn absent_access_panics() {
        let rows = sample();
        let spec = ColumnSpec { dictionaries: vec![], used: Some(vec![0]) };
        let ct = ColumnTable::from_rows(&rows, &spec);
        ct.columns[1].value_at(0);
    }
}
