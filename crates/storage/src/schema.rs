//! Relational schemas and the catalog.
//!
//! LegoBase's data partitioning (Section 3.2.1) is driven by primary/foreign
//! key annotations developers supply *at schema definition time*. [`TableMeta`]
//! carries those annotations; the `PartitioningAndDateIndices` transformer in
//! the `legobase-sc` crate reads them to decide which 1D/2D partitioned
//! structures to build at load time.

use std::collections::HashMap;
use std::fmt;

/// Static SQL types supported by the engine.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Type {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// Variable-length string.
    Str,
    /// Calendar date (stored as a day count).
    Date,
    /// Boolean.
    Bool,
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Type::Int => "INT",
            Type::Float => "FLOAT",
            Type::Str => "STRING",
            Type::Date => "DATE",
            Type::Bool => "BOOL",
        };
        f.write_str(s)
    }
}

/// A named, typed attribute.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Field {
    /// Attribute name.
    pub name: String,
    /// Attribute type.
    pub ty: Type,
}

impl Field {
    /// Creates a named, typed field.
    pub fn new(name: &str, ty: Type) -> Field {
        Field { name: name.to_string(), ty }
    }
}

/// An ordered list of attributes.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Schema {
    /// Ordered attribute list.
    pub fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema from a field list.
    pub fn new(fields: Vec<Field>) -> Schema {
        Schema { fields }
    }

    /// Builds a schema from `(name, type)` pairs.
    pub fn of(cols: &[(&str, Type)]) -> Schema {
        Schema { fields: cols.iter().map(|(n, t)| Field::new(n, *t)).collect() }
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Resolves an attribute name to its position.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Like [`Schema::index_of`] but panics with a readable message; plan
    /// builders use this since attribute names are static.
    pub fn col(&self, name: &str) -> usize {
        self.index_of(name).unwrap_or_else(|| panic!("no attribute `{name}` in schema {self:?}"))
    }

    /// Type of the attribute at `idx`.
    pub fn ty(&self, idx: usize) -> Type {
        self.fields[idx].ty
    }

    /// Concatenates two schemas (the output of a join).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema { fields }
    }

    /// Keeps only the given positions (projection / unused-field removal,
    /// Section 3.6.1).
    pub fn project(&self, keep: &[usize]) -> Schema {
        Schema { fields: keep.iter().map(|&i| self.fields[i].clone()).collect() }
    }
}

/// A foreign-key annotation: `table.column → referenced_table.referenced_column`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForeignKey {
    /// Position of the referencing column in the owning table.
    pub column: usize,
    /// Name of the referenced table.
    pub references: String,
    /// Position of the referenced (primary-key) column.
    pub referenced_column: usize,
}

/// Schema plus physical-design annotations for one base table.
#[derive(Clone, Debug)]
pub struct TableMeta {
    /// Relation name.
    pub name: String,
    /// Relation schema.
    pub schema: Schema,
    /// Primary-key column positions. A single-column integer primary key in a
    /// contiguous range enables the 1D-array optimization; composite keys are
    /// partitioned like foreign keys (Section 3.2.1).
    pub primary_key: Vec<usize>,
    /// Foreign keys: referencing column → referenced table/column.
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableMeta {
    /// Creates table metadata with no keys declared.
    pub fn new(name: &str, schema: Schema) -> TableMeta {
        TableMeta {
            name: name.to_string(),
            schema,
            primary_key: Vec::new(),
            foreign_keys: Vec::new(),
        }
    }

    /// Declares the primary key (the paper's schema annotations).
    pub fn with_primary_key(mut self, cols: &[&str]) -> TableMeta {
        self.primary_key = cols.iter().map(|c| self.schema.col(c)).collect();
        self
    }

    /// Declares a foreign key (column referencing `references.ref_col`).
    pub fn with_foreign_key(mut self, col: &str, references: &str, ref_col: usize) -> TableMeta {
        let column = self.schema.col(col);
        self.foreign_keys.push(ForeignKey {
            column,
            references: references.to_string(),
            referenced_column: ref_col,
        });
        self
    }
}

/// The database catalog: all table definitions by name, plus the optimizer
/// statistics attached to them at load time.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    tables: HashMap<String, TableMeta>,
    stats: HashMap<String, crate::stats::TableStatistics>,
    version: u64,
    feedback: HashMap<String, f64>,
    stats_epoch: u64,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers a table.
    pub fn add(&mut self, meta: TableMeta) {
        self.tables.insert(meta.name.clone(), meta);
        self.version += 1;
    }

    /// Looks a table up by name.
    pub fn get(&self, name: &str) -> Option<&TableMeta> {
        self.tables.get(name)
    }

    /// Panicking lookup for statically-known table names.
    pub fn table(&self, name: &str) -> &TableMeta {
        self.get(name).unwrap_or_else(|| panic!("unknown table `{name}`"))
    }

    /// Attaches optimizer statistics to a table (collected in one pass at
    /// load time, or analytic — e.g. the TPC-H scale-factor formulas).
    pub fn set_stats(&mut self, table: &str, stats: crate::stats::TableStatistics) {
        self.stats.insert(table.to_string(), stats);
        self.version += 1;
    }

    /// Monotonic change counter: every [`Catalog::add`] and
    /// [`Catalog::set_stats`] bumps it. Caches keyed on catalog contents
    /// (the query service's plan cache keys on SQL text + this version)
    /// use it to invalidate entries when the statistics a cached plan was
    /// optimized under go stale.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The optimizer statistics of a table, if any were attached. Cost-based
    /// planning degrades gracefully to defaults when this returns `None`.
    pub fn stats(&self, table: &str) -> Option<&crate::stats::TableStatistics> {
        self.stats.get(table)
    }

    /// Absorbs executed-plan cardinalities into the adaptive-feedback store:
    /// each entry maps a plan fingerprint to the row count the plan actually
    /// produced. Returns `true` — and bumps the [stats epoch](Self::stats_epoch)
    /// — only when an observation materially changes what the catalog
    /// already knew (a new fingerprint, or an actual drifted more than 5%
    /// from the remembered one), so repeated identical executions converge
    /// instead of re-planning forever.
    ///
    /// Deliberately does **not** bump [`Catalog::version`]: plans optimized
    /// under older feedback remain *correct* (feedback only sharpens
    /// estimates), so version-keyed caches stay valid.
    pub fn absorb_actuals(&mut self, actuals: &[(String, f64)]) -> bool {
        let mut changed = false;
        for (fingerprint, rows) in actuals {
            let rows = rows.max(0.0);
            match self.feedback.get(fingerprint) {
                Some(prev) => {
                    let (lo, hi) = (prev.min(rows).max(1.0), prev.max(rows).max(1.0));
                    if hi / lo > 1.05 {
                        self.feedback.insert(fingerprint.clone(), rows);
                        changed = true;
                    }
                }
                None => {
                    self.feedback.insert(fingerprint.clone(), rows);
                    changed = true;
                }
            }
        }
        if changed {
            self.stats_epoch += 1;
        }
        changed
    }

    /// The remembered actual cardinality for a plan fingerprint, if one was
    /// absorbed by [`Catalog::absorb_actuals`].
    pub fn feedback_rows(&self, fingerprint: &str) -> Option<f64> {
        self.feedback.get(fingerprint).copied()
    }

    /// Monotonic counter of *estimate-relevant* knowledge: bumped whenever
    /// [`Catalog::absorb_actuals`] learns something new. Caches that want to
    /// re-plan on fresh feedback key on `(version, stats_epoch)`; caches
    /// that only care about correctness key on `version` alone.
    pub fn stats_epoch(&self) -> u64 {
        self.stats_epoch
    }

    /// Registered table names, in insertion order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(|s| s.as_str())
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no table is registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::of(&[("id", Type::Int), ("name", Type::Str), ("price", Type::Float)])
    }

    #[test]
    fn index_lookup() {
        let s = schema();
        assert_eq!(s.index_of("name"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.col("price"), 2);
        assert_eq!(s.ty(0), Type::Int);
    }

    #[test]
    #[should_panic(expected = "no attribute")]
    fn missing_column_panics() {
        schema().col("missing");
    }

    #[test]
    fn concat_and_project() {
        let s = schema();
        let t = Schema::of(&[("x", Type::Date)]);
        let joined = s.concat(&t);
        assert_eq!(joined.len(), 4);
        assert_eq!(joined.col("x"), 3);
        let proj = joined.project(&[3, 0]);
        assert_eq!(proj.fields[0].name, "x");
        assert_eq!(proj.fields[1].name, "id");
    }

    #[test]
    fn catalog_annotations() {
        let mut cat = Catalog::new();
        cat.add(
            TableMeta::new("orders", Schema::of(&[("o_orderkey", Type::Int)]))
                .with_primary_key(&["o_orderkey"]),
        );
        cat.add(
            TableMeta::new(
                "lineitem",
                Schema::of(&[("l_orderkey", Type::Int), ("l_linenumber", Type::Int)]),
            )
            .with_primary_key(&["l_orderkey", "l_linenumber"])
            .with_foreign_key("l_orderkey", "orders", 0),
        );
        assert_eq!(cat.len(), 2);
        assert!(cat.stats("orders").is_none());
        cat.set_stats(
            "orders",
            crate::stats::TableStatistics::analytic(
                1500,
                vec![crate::stats::ColumnStats::new(
                    1500,
                    Some(crate::Value::Int(1)),
                    Some(crate::Value::Int(6000)),
                )],
            ),
        );
        let stats = cat.stats("orders").expect("stats attached");
        assert_eq!(stats.rows, 1500);
        assert_eq!(stats.columns[0].distinct, 1500);
        let li = cat.table("lineitem");
        assert_eq!(li.primary_key, vec![0, 1]);
        assert_eq!(li.foreign_keys[0].references, "orders");
        assert_eq!(cat.table("orders").primary_key, vec![0]);
    }

    /// Feedback absorption advances the stats epoch (the re-planning
    /// signal), converges on repeated identical observations, and never
    /// touches the correctness-keyed catalog version.
    #[test]
    fn absorb_actuals_converges_and_keeps_version() {
        let mut cat = Catalog::new();
        cat.add(TableMeta::new("t", Schema::of(&[("id", Type::Int)])));
        let v = cat.version();
        assert_eq!(cat.stats_epoch(), 0);
        assert!(cat.absorb_actuals(&[("q7:root".into(), 4.0)]));
        assert_eq!(cat.stats_epoch(), 1);
        assert_eq!(cat.feedback_rows("q7:root"), Some(4.0));
        assert_eq!(cat.feedback_rows("unseen"), None);
        // Same observation again: within tolerance, no epoch churn.
        assert!(!cat.absorb_actuals(&[("q7:root".into(), 4.0)]));
        assert_eq!(cat.stats_epoch(), 1);
        // A materially different actual re-opens the entry.
        assert!(cat.absorb_actuals(&[("q7:root".into(), 400.0)]));
        assert_eq!(cat.stats_epoch(), 2);
        assert_eq!(cat.feedback_rows("q7:root"), Some(400.0));
        assert_eq!(cat.version(), v, "feedback never invalidates plan correctness");
    }

    /// Schema registration and statistics refreshes both advance the catalog
    /// version — the invalidation signal for plan caches keyed on it.
    #[test]
    fn version_bumps_on_add_and_set_stats() {
        let mut cat = Catalog::new();
        assert_eq!(cat.version(), 0);
        cat.add(TableMeta::new("t", Schema::of(&[("id", Type::Int)])));
        let v1 = cat.version();
        assert!(v1 > 0);
        cat.set_stats("t", crate::stats::TableStatistics::analytic(10, Vec::new()));
        let v2 = cat.version();
        assert!(v2 > v1);
        // Re-setting stats (same table) is still a change.
        cat.set_stats("t", crate::stats::TableStatistics::analytic(20, Vec::new()));
        assert!(cat.version() > v2);
    }
}
