//! Calendar dates.
//!
//! TPC-H date attributes span 1992-01-01 … 1998-12-31. LegoBase's date
//! indices (Section 3.2.3) group tuples by *year*, so the representation must
//! make year extraction cheap. We store a date as the number of days since
//! 1970-01-01 (`i32`), with conversions based on the standard civil-calendar
//! algorithms, and cache nothing else: ordering on the raw day count is
//! exactly date ordering.

use std::fmt;

/// A calendar date, stored as days since the Unix epoch (1970-01-01).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Date(pub i32);

impl Date {
    /// Builds a date from a `(year, month, day)` civil triple.
    ///
    /// # Panics
    /// Panics if the triple is not a valid civil date.
    pub fn from_ymd(y: i32, m: u32, d: u32) -> Date {
        assert!((1..=12).contains(&m), "month out of range: {m}");
        assert!(d >= 1 && d <= days_in_month(y, m), "day out of range: {y}-{m}-{d}");
        Date(days_from_civil(y, m, d))
    }

    /// Parses a **strict** `YYYY-MM-DD` string: exactly four, two, and two
    /// ASCII digits separated by `-`. Signs, spaces, and non-canonical digit
    /// counts are rejected (`str::parse::<i32>` would otherwise accept
    /// `"+1996-01-01"` or `" 1996"` segments, silently widening the accepted
    /// input grammar).
    pub fn parse(s: &str) -> Option<Date> {
        let b = s.as_bytes();
        if b.len() != 10 || b[4] != b'-' || b[7] != b'-' {
            return None;
        }
        let digits = |r: std::ops::Range<usize>| -> Option<u32> {
            let mut v: u32 = 0;
            for &c in &b[r] {
                if !c.is_ascii_digit() {
                    return None;
                }
                v = v * 10 + (c - b'0') as u32;
            }
            Some(v)
        };
        let y = digits(0..4)? as i32;
        let m = digits(5..7)?;
        let d = digits(8..10)?;
        if !(1..=12).contains(&m) || d < 1 || d > days_in_month(y, m) {
            return None;
        }
        Some(Date(days_from_civil(y, m, d)))
    }

    /// Returns the `(year, month, day)` civil triple.
    pub fn ymd(self) -> (i32, u32, u32) {
        civil_from_days(self.0)
    }

    /// Returns the year, used by the automatically inferred date indices.
    pub fn year(self) -> i32 {
        self.ymd().0
    }

    /// Adds (or subtracts) a number of days.
    pub fn add_days(self, days: i32) -> Date {
        Date(self.0 + days)
    }

    /// Adds a number of months, clamping the day to the target month length
    /// (`1992-01-31 + 1 month = 1992-02-29`).
    pub fn add_months(self, months: i32) -> Date {
        let (y, m, d) = self.ymd();
        let total = y * 12 + (m as i32 - 1) + months;
        let ny = total.div_euclid(12);
        let nm = (total.rem_euclid(12) + 1) as u32;
        let nd = d.min(days_in_month(ny, nm));
        Date::from_ymd(ny, nm, nd)
    }

    /// Adds a number of years (clamping Feb 29 to Feb 28 when needed).
    pub fn add_years(self, years: i32) -> Date {
        self.add_months(years * 12)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

impl fmt::Debug for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Date({self})")
    }
}

fn is_leap(y: i32) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

fn days_in_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(y) {
                29
            } else {
                28
            }
        }
        _ => unreachable!("invalid month {m}"),
    }
}

// Howard Hinnant's `days_from_civil` / `civil_from_days` algorithms.
fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u32; // [0, 399]
    let mp = (m as i32 + 9) % 12; // Mar=0 … Feb=11
    let doy = (153 * mp as u32 + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe as i32 - 719468
}

fn civil_from_days(z: i32) -> (i32, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = (z - era * 146097) as u32; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe as i32 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_epoch() {
        assert_eq!(Date::from_ymd(1970, 1, 1).0, 0);
        assert_eq!(Date(0).ymd(), (1970, 1, 1));
    }

    #[test]
    fn roundtrip_tpch_range() {
        // Every day of the TPC-H date range must round-trip.
        let start = Date::from_ymd(1992, 1, 1);
        let end = Date::from_ymd(1998, 12, 31);
        let mut prev = None;
        for day in start.0..=end.0 {
            let (y, m, d) = Date(day).ymd();
            assert_eq!(Date::from_ymd(y, m, d).0, day);
            assert!((1992..=1998).contains(&y));
            if let Some(p) = prev {
                assert!(Date(day) > Date(p));
            }
            prev = Some(day);
        }
        assert_eq!(end.0 - start.0 + 1, 2557); // 7 years, 2 leap days
    }

    #[test]
    fn parse_and_display() {
        let d = Date::parse("1996-01-01").unwrap();
        assert_eq!(d.to_string(), "1996-01-01");
        assert_eq!(d.ymd(), (1996, 1, 1));
        assert!(Date::parse("1996-13-01").is_none());
        assert!(Date::parse("1996-02-30").is_none());
        assert!(Date::parse("nope").is_none());
    }

    #[test]
    fn parse_rejects_non_canonical_shapes() {
        // A signed year parses under str::parse::<i32> but is not a valid
        // TPC-H date literal; the strict grammar must reject it.
        assert!(Date::parse("+1996-01-01").is_none());
        assert!(Date::parse("-996-01-01").is_none());
        // Per-segment signs and spaces.
        assert!(Date::parse("1996-+1-01").is_none());
        assert!(Date::parse("1996- 1-01").is_none());
        assert!(Date::parse(" 996-01-01").is_none());
        // Wrong digit counts and separators.
        assert!(Date::parse("96-01-01").is_none());
        assert!(Date::parse("1996-1-01").is_none());
        assert!(Date::parse("1996-01-1").is_none());
        assert!(Date::parse("1996-001-1").is_none());
        assert!(Date::parse("1996/01/01").is_none());
        assert!(Date::parse("1996-01-01 ").is_none());
        assert!(Date::parse("19960101").is_none());
        assert!(Date::parse("").is_none());
        // Unicode digits must not sneak through byte-offset slicing.
        assert!(Date::parse("１996-01-01").is_none());
        // Canonical forms still accepted across the whole year range.
        assert_eq!(Date::parse("0001-01-01").unwrap().ymd(), (1, 1, 1));
        assert_eq!(Date::parse("1998-12-31").unwrap(), Date::from_ymd(1998, 12, 31));
    }

    #[test]
    fn month_arithmetic() {
        let d = Date::from_ymd(1995, 12, 31);
        assert_eq!(d.add_months(1), Date::from_ymd(1996, 1, 31));
        assert_eq!(d.add_months(2), Date::from_ymd(1996, 2, 29)); // leap clamp
        assert_eq!(d.add_months(-12), Date::from_ymd(1994, 12, 31));
        assert_eq!(d.add_years(3), Date::from_ymd(1998, 12, 31));
        assert_eq!(Date::from_ymd(1998, 12, 1).add_days(-90), Date::from_ymd(1998, 9, 2));
    }

    #[test]
    fn leap_years() {
        assert!(is_leap(1992));
        assert!(is_leap(1996));
        assert!(!is_leap(1900));
        assert!(is_leap(2000));
        assert_eq!(days_in_month(1996, 2), 29);
        assert_eq!(days_in_month(1995, 2), 28);
    }
}
