//! Hoisted memory pools (Section 3.5.1).
//!
//! LegoBase collects the `malloc` sites of a query at compilation time and
//! replaces them with references into per-type memory pools allocated during
//! data loading. In Rust the analogue of a critical-path `malloc` is a `Vec`
//! growth event; [`PooledVec`] is a vector whose capacity is reserved up-front
//! from worst-case statistics and which *records* any growth that happens
//! afterwards, so tests and the Fig. 18 proxy metrics can verify that the
//! optimized engine performs no allocation on the critical path.

use crate::metrics;

/// A vector with pre-reserved capacity that tracks critical-path growth.
#[derive(Clone, Debug, Default)]
pub struct PooledVec<T> {
    items: Vec<T>,
    initial_capacity: usize,
    growth_events: usize,
}

impl<T> PooledVec<T> {
    /// Creates a pool sized for `capacity` elements (the hoisted allocation).
    pub fn with_capacity(capacity: usize) -> PooledVec<T> {
        PooledVec {
            items: Vec::with_capacity(capacity),
            initial_capacity: capacity,
            growth_events: 0,
        }
    }

    /// Appends an element; if the pre-sizing was insufficient this counts as
    /// a critical-path allocation (the thing the optimization removes).
    #[inline]
    pub fn push(&mut self, item: T) {
        if self.items.len() == self.items.capacity() {
            self.growth_events += 1;
            metrics::allocation();
        }
        self.items.push(item);
    }

    /// Number of times the pool had to grow past its initial reservation.
    pub fn growth_events(&self) -> usize {
        self.growth_events
    }

    /// Capacity reserved at construction (worst-case analysis).
    pub fn initial_capacity(&self) -> usize {
        self.initial_capacity
    }

    /// Records drawn so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing was drawn.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The drawn records.
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }

    /// Consumes the pool into its backing vector.
    pub fn into_vec(self) -> Vec<T> {
        self.items
    }
}

impl<T> std::ops::Deref for PooledVec<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.items
    }
}

impl<T> std::ops::Index<usize> for PooledVec<T> {
    type Output = T;
    fn index(&self, i: usize) -> &T {
        &self.items[i]
    }
}

/// Sizes a pool from table statistics with the paper's worst-case policy:
/// allocate for every input tuple (statistics may later tighten this).
pub fn worst_case_capacity(input_rows: usize) -> usize {
    input_rows.max(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_growth_within_reservation() {
        let mut p = PooledVec::with_capacity(100);
        for i in 0..100 {
            p.push(i);
        }
        assert_eq!(p.growth_events(), 0);
        assert_eq!(p.len(), 100);
        assert_eq!(p.as_slice()[99], 99);
    }

    #[test]
    fn growth_detected_past_reservation() {
        let mut p = PooledVec::with_capacity(4);
        for i in 0..10 {
            p.push(i);
        }
        assert!(p.growth_events() >= 1);
        assert_eq!(p.initial_capacity(), 4);
        assert_eq!(p[9], 9);
    }

    #[test]
    fn worst_case_floor() {
        assert_eq!(worst_case_capacity(0), 16);
        assert_eq!(worst_case_capacity(1000), 1000);
    }
}
