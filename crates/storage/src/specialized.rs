//! Data structures produced by LegoBase's data-structure specialization.
//!
//! The `HashMapLowering` transformer (Section 3.2.2, Fig. 11) replaces generic
//! hash maps by native arrays with intrusive chaining: one preallocated bucket
//! array, entries chained through `next` indices, hash/equality inlined, and
//! the whole structure sized up-front from statistics so no rehashing ever
//! happens on the critical path. [`ChainedArrayMap`] and [`ChainedMultiMap`]
//! are those structures (Fig. 7e's `Array[R]` with `r.next` chaining).
//!
//! [`DirectArray`] is the result of data-structure-initialization hoisting
//! (Section 3.5.2): when the key domain is known at load time, the aggregation
//! store becomes a dense, pre-zeroed array and the per-tuple existence check
//! disappears. [`SingleValue`] is the `SingletonHashMapToValue` transformer's
//! output for single-group aggregations such as TPC-H Q6.

use crate::metrics;

/// Multiplicative integer hashing (Fibonacci hashing); the lowered maps inline
/// this instead of calling a virtual hash function.
#[inline(always)]
pub fn hash_u64(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

const EMPTY: i32 = -1;

struct Entry<V> {
    key: u64,
    value: V,
    next: i32,
}

/// A hash map lowered to a native bucket array with intrusive chaining.
///
/// Capacity is fixed at construction (worst-case sizing from statistics, as
/// in the paper); the entry pool grows only if the estimate was wrong, which
/// tests assert never happens for TPC-H.
pub struct ChainedArrayMap<V> {
    buckets: Vec<i32>,
    entries: Vec<Entry<V>>,
    mask: u64,
}

impl<V> ChainedArrayMap<V> {
    /// Creates a map with at least `expected` capacity; the bucket count is
    /// the next power of two ≥ `expected`.
    pub fn with_capacity(expected: usize) -> ChainedArrayMap<V> {
        let nbuckets = expected.next_power_of_two().max(16);
        ChainedArrayMap {
            buckets: vec![EMPTY; nbuckets],
            entries: Vec::with_capacity(expected),
            mask: (nbuckets - 1) as u64,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    #[inline(always)]
    fn bucket(&self, key: u64) -> usize {
        ((hash_u64(key) >> 7) & self.mask) as usize
    }

    /// The lowered `getOrElseUpdate` of Fig. 11: probe the bucket, walk the
    /// chain with inlined equality, insert at the head on miss.
    #[inline]
    pub fn get_or_insert_with(&mut self, key: u64, init: impl FnOnce() -> V) -> &mut V {
        metrics::hash_probe();
        let b = self.bucket(key);
        let mut idx = self.buckets[b];
        let mut steps = 0u64;
        while idx != EMPTY {
            steps += 1;
            let e = &self.entries[idx as usize];
            if e.key == key {
                metrics::chain_steps(steps);
                let i = idx as usize;
                return &mut self.entries[i].value;
            }
            idx = e.next;
        }
        metrics::chain_steps(steps);
        let new_idx = self.entries.len() as i32;
        self.entries.push(Entry { key, value: init(), next: self.buckets[b] });
        self.buckets[b] = new_idx;
        &mut self.entries[new_idx as usize].value
    }

    /// Point lookup.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        metrics::hash_probe();
        let mut idx = self.buckets[self.bucket(key)];
        let mut steps = 0u64;
        while idx != EMPTY {
            steps += 1;
            let e = &self.entries[idx as usize];
            if e.key == key {
                metrics::chain_steps(steps);
                return Some(&e.value);
            }
            idx = e.next;
        }
        metrics::chain_steps(steps);
        None
    }

    /// Iterates over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.entries.iter().map(|e| (e.key, &e.value))
    }

    /// True if the entry pool had to grow past its initial capacity — i.e.
    /// the worst-case sizing failed and a "resize on the critical path"
    /// happened. Exposed so tests can assert it stays `false`.
    pub fn overflowed(&self) -> bool {
        // Vec growth would have raised capacity above the initial request.
        self.entries.len() > self.entries.capacity() || self.entries.capacity() == 0
    }
}

/// A multi-map (join hash table) lowered to bucket array + chained row ids.
///
/// This is exactly Fig. 7e: records are chained through a `next` pointer
/// stored alongside the row id, no per-binding allocation.
pub struct ChainedMultiMap {
    buckets: Vec<i32>,
    /// Parallel arrays forming the entry pool.
    keys: Vec<u64>,
    rows: Vec<u32>,
    nexts: Vec<i32>,
    mask: u64,
}

impl ChainedMultiMap {
    /// Pre-sizes the bucket array for an expected entry count.
    pub fn with_capacity(expected: usize) -> ChainedMultiMap {
        let nbuckets = expected.next_power_of_two().max(16);
        ChainedMultiMap {
            buckets: vec![EMPTY; nbuckets],
            keys: Vec::with_capacity(expected),
            rows: Vec::with_capacity(expected),
            nexts: Vec::with_capacity(expected),
            mask: (nbuckets - 1) as u64,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The lowered `addBinding`: push the row at the head of its chain.
    #[inline]
    pub fn insert(&mut self, key: u64, row: u32) {
        metrics::hash_probe();
        let b = ((hash_u64(key) >> 7) & self.mask) as usize;
        let idx = self.keys.len() as i32;
        self.keys.push(key);
        self.rows.push(row);
        self.nexts.push(self.buckets[b]);
        self.buckets[b] = idx;
    }

    /// The lowered `get(...).foreach`: walk the chain, yielding matching rows.
    #[inline]
    pub fn for_each_match(&self, key: u64, mut f: impl FnMut(u32)) {
        metrics::hash_probe();
        let mut idx = self.buckets[((hash_u64(key) >> 7) & self.mask) as usize];
        let mut steps = 0u64;
        while idx != EMPTY {
            steps += 1;
            let i = idx as usize;
            if self.keys[i] == key {
                f(self.rows[i]);
            }
            idx = self.nexts[i];
        }
        metrics::chain_steps(steps);
    }

    /// Returns the first matching row, if any (semi-join probes).
    #[inline]
    pub fn first_match(&self, key: u64) -> Option<u32> {
        let mut found = None;
        self.for_each_match(key, |r| {
            if found.is_none() {
                found = Some(r);
            }
        });
        found
    }
}

/// A dense aggregation array over a statically-known integer key domain
/// `[min, max]`, pre-initialized so the per-tuple "does the group exist yet"
/// branch is gone (Section 3.5.2).
pub struct DirectArray<V> {
    min: i64,
    slots: Vec<V>,
    touched: Vec<bool>,
}

impl<V: Clone> DirectArray<V> {
    /// Pre-initializes every slot in `[min, max]` with `zero`.
    pub fn new(min: i64, max: i64, zero: V) -> DirectArray<V> {
        assert!(max >= min, "empty key domain");
        let n = (max - min + 1) as usize;
        DirectArray { min, slots: vec![zero; n], touched: vec![false; n] }
    }

    /// Bucket-array capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Direct, branch-free slot access.
    #[inline(always)]
    pub fn slot(&mut self, key: i64) -> &mut V {
        let idx = (key - self.min) as usize;
        self.touched[idx] = true;
        &mut self.slots[idx]
    }

    /// Read-only access without marking the slot live.
    #[inline(always)]
    pub fn peek(&self, key: i64) -> &V {
        &self.slots[(key - self.min) as usize]
    }

    /// Iterates over slots that were actually written, in key order.
    pub fn iter_touched(&self) -> impl Iterator<Item = (i64, &V)> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(i, _)| self.touched[*i])
            .map(|(i, v)| (self.min + i as i64, v))
    }
}

/// The `SingletonHashMapToValue` result: a hash map with one statically-known
/// key collapses to a single value (e.g. the global aggregate of TPC-H Q6).
#[derive(Clone, Debug, Default)]
pub struct SingleValue<V> {
    value: V,
    touched: bool,
}

impl<V> SingleValue<V> {
    /// Creates the single slot holding `zero`.
    pub fn new(zero: V) -> SingleValue<V> {
        SingleValue { value: zero, touched: false }
    }

    #[inline(always)]
    /// Mutable access to the slot (creates it logically on first use).
    pub fn slot(&mut self) -> &mut V {
        self.touched = true;
        &mut self.value
    }

    /// The slot value, if it was ever touched.
    pub fn get(&self) -> Option<&V> {
        self.touched.then_some(&self.value)
    }

    /// Reads the value regardless of whether it was written (aggregations
    /// over empty inputs still report their zero).
    pub fn value(&self) -> &V {
        &self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn chained_map_matches_std_hashmap() {
        let mut lowered: ChainedArrayMap<i64> = ChainedArrayMap::with_capacity(64);
        let mut model: HashMap<u64, i64> = HashMap::new();
        // Colliding and non-colliding keys.
        for i in 0..1000u64 {
            let key = (i * 7) % 257;
            *lowered.get_or_insert_with(key, || 0) += i as i64;
            *model.entry(key).or_insert(0) += i as i64;
        }
        assert_eq!(lowered.len(), model.len());
        for (k, v) in lowered.iter() {
            assert_eq!(model[&k], *v);
        }
        assert_eq!(lowered.get(3), model.get(&3));
        assert_eq!(lowered.get(9999), None);
    }

    #[test]
    fn multimap_returns_all_bindings() {
        let mut mm = ChainedMultiMap::with_capacity(16);
        mm.insert(1, 10);
        mm.insert(2, 20);
        mm.insert(1, 11);
        mm.insert(1, 12);
        let mut got = Vec::new();
        mm.for_each_match(1, |r| got.push(r));
        got.sort_unstable();
        assert_eq!(got, vec![10, 11, 12]);
        assert_eq!(mm.first_match(2), Some(20));
        assert_eq!(mm.first_match(3), None);
        assert_eq!(mm.len(), 4);
    }

    #[test]
    fn direct_array_preinitialized() {
        let mut d: DirectArray<f64> = DirectArray::new(10, 20, 0.0);
        assert_eq!(d.capacity(), 11);
        *d.slot(15) += 2.5;
        *d.slot(10) += 1.0;
        *d.slot(15) += 0.5;
        let touched: Vec<(i64, f64)> = d.iter_touched().map(|(k, v)| (k, *v)).collect();
        assert_eq!(touched, vec![(10, 1.0), (15, 3.0)]);
        assert_eq!(*d.peek(11), 0.0);
    }

    #[test]
    fn single_value_tracks_touch() {
        let mut s = SingleValue::new(0.0f64);
        assert_eq!(s.get(), None);
        assert_eq!(*s.value(), 0.0);
        *s.slot() += 4.5;
        assert_eq!(s.get(), Some(&4.5));
    }

    #[test]
    fn no_rehash_within_capacity() {
        let mut m: ChainedArrayMap<u32> = ChainedArrayMap::with_capacity(128);
        for i in 0..128 {
            m.get_or_insert_with(i, || 0);
        }
        assert!(!m.overflowed());
    }
}
