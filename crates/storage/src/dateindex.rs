//! Automatically inferred indices on date attributes (Section 3.2.3).
//!
//! LegoBase groups the tuples of every date attribute by *year* at load time,
//! "forming a two-dimensional array where each bucket holds all tuples of a
//! particular year". A range predicate then checks one representative per
//! bucket (Fig. 12b): fully-covered years are emitted without any per-tuple
//! comparison, other years are skipped wholesale, and only boundary years
//! fall back to per-tuple checks.

use crate::date::Date;

/// One year bucket intersecting a queried date range: an offset range into
/// [`DateYearIndex::row_ids`], plus whether the year is fully covered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RangeSegment {
    /// First offset into the row-id store (inclusive).
    pub start: usize,
    /// One past the last offset.
    pub end: usize,
    /// `true` when every row of the bucket matches without a date check.
    pub full: bool,
}

/// Year-bucketed index over a date column, in CSR layout.
#[derive(Clone, Debug)]
pub struct DateYearIndex {
    first_year: i32,
    /// `offsets[y - first_year] .. offsets[y - first_year + 1]` delimits the
    /// bucket of year `y` inside `rows`.
    offsets: Vec<u32>,
    /// Row ids grouped by year (order within a year preserved).
    rows: Vec<u32>,
}

impl DateYearIndex {
    /// Builds the index from raw day counts (the storage representation of
    /// a date column).
    pub fn build(days: &[i32]) -> DateYearIndex {
        if days.is_empty() {
            return DateYearIndex { first_year: 0, offsets: vec![0], rows: Vec::new() };
        }
        let years: Vec<i32> = days.iter().map(|&d| Date(d).year()).collect();
        let first_year = *years.iter().min().expect("non-empty");
        let last_year = *years.iter().max().expect("non-empty");
        let nyears = (last_year - first_year + 1) as usize;
        let mut offsets = vec![0u32; nyears + 1];
        for &y in &years {
            offsets[(y - first_year) as usize + 1] += 1;
        }
        for i in 0..nyears {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut rows = vec![0u32; days.len()];
        for (row, &y) in years.iter().enumerate() {
            let b = (y - first_year) as usize;
            rows[cursor[b] as usize] = row as u32;
            cursor[b] += 1;
        }
        DateYearIndex { first_year, offsets, rows }
    }

    fn year_range(&self) -> std::ops::Range<i32> {
        self.first_year..self.first_year + (self.offsets.len() as i32 - 1)
    }

    fn bucket(&self, year: i32) -> &[u32] {
        let idx = (year - self.first_year) as usize;
        let lo = self.offsets[idx] as usize;
        let hi = self.offsets[idx + 1] as usize;
        &self.rows[lo..hi]
    }

    /// The row ids grouped by year (the backing store [`Self::range_segments`]
    /// offsets index into).
    pub fn row_ids(&self) -> &[u32] {
        &self.rows
    }

    /// The year buckets intersecting `[lo, hi]`, as offset ranges into
    /// [`Self::row_ids`] plus a flag telling whether the bucket's year is
    /// *fully* covered by the range (no per-tuple comparison needed) or is a
    /// boundary year (each row's date must still be checked).
    ///
    /// Consuming the segments in order — and the rows within each segment in
    /// order — visits candidate rows in exactly the order
    /// [`Self::scan_range`] emits them, which is what lets the morsel-driven
    /// parallel scan partition an index scan and still concatenate a
    /// bit-identical selection vector.
    pub fn range_segments(&self, lo: Date, hi: Date) -> Vec<RangeSegment> {
        let mut out = Vec::new();
        if lo > hi {
            return out;
        }
        let lo_year = lo.year();
        let hi_year = hi.year();
        for year in self.year_range() {
            if year < lo_year || year > hi_year {
                continue; // whole bucket skipped (Fig. 12b)
            }
            let idx = (year - self.first_year) as usize;
            let full = Date::from_ymd(year, 1, 1) >= lo && Date::from_ymd(year, 12, 31) <= hi;
            let (start, end) = (self.offsets[idx] as usize, self.offsets[idx + 1] as usize);
            if start < end {
                out.push(RangeSegment { start, end, full });
            }
        }
        out
    }

    /// Visits every row whose date lies in `[lo, hi]` (inclusive), skipping
    /// non-matching years entirely and skipping the per-tuple comparison for
    /// fully-covered years. `days` must be the column the index was built on.
    pub fn scan_range(&self, days: &[i32], lo: Date, hi: Date, mut emit: impl FnMut(u32)) {
        for seg in self.range_segments(lo, hi) {
            let bucket = &self.rows[seg.start..seg.end];
            if seg.full {
                // Fully covered: no per-tuple comparison at all.
                for &row in bucket {
                    emit(row);
                }
            } else {
                for &row in bucket {
                    let d = days[row as usize];
                    if d >= lo.0 && d <= hi.0 {
                        emit(row);
                    }
                }
            }
        }
    }

    /// Number of rows per year, for inspection/statistics.
    pub fn bucket_sizes(&self) -> Vec<(i32, usize)> {
        self.year_range().map(|y| (y, self.bucket(y).len())).collect()
    }

    /// Approximate resident bytes (Fig. 20 accounting).
    pub fn approx_bytes(&self) -> usize {
        self.offsets.capacity() * 4 + self.rows.capacity() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn column() -> Vec<i32> {
        // Dates spread over 1992–1998, deliberately unsorted.
        let mut days = Vec::new();
        for (y, m, d) in [
            (1995, 6, 15),
            (1992, 1, 1),
            (1998, 12, 31),
            (1995, 1, 1),
            (1993, 7, 4),
            (1995, 12, 31),
            (1996, 2, 29),
            (1992, 11, 30),
        ] {
            days.push(Date::from_ymd(y, m, d).0);
        }
        days
    }

    fn scan_naive(days: &[i32], lo: Date, hi: Date) -> Vec<u32> {
        days.iter()
            .enumerate()
            .filter(|(_, &d)| d >= lo.0 && d <= hi.0)
            .map(|(i, _)| i as u32)
            .collect()
    }

    #[test]
    fn range_scan_matches_naive_filter() {
        let days = column();
        let idx = DateYearIndex::build(&days);
        let cases = [
            (Date::from_ymd(1995, 1, 1), Date::from_ymd(1995, 12, 31)), // exact year
            (Date::from_ymd(1994, 6, 1), Date::from_ymd(1996, 6, 1)),   // straddles years
            (Date::from_ymd(1992, 1, 1), Date::from_ymd(1998, 12, 31)), // everything
            (Date::from_ymd(1999, 1, 1), Date::from_ymd(1999, 12, 31)), // nothing
            (Date::from_ymd(1995, 6, 15), Date::from_ymd(1995, 6, 15)), // point
        ];
        for (lo, hi) in cases {
            let mut got = Vec::new();
            idx.scan_range(&days, lo, hi, |r| got.push(r));
            got.sort_unstable();
            assert_eq!(got, scan_naive(&days, lo, hi), "range {lo}..{hi}");
        }
    }

    #[test]
    fn empty_and_inverted_ranges() {
        let days = column();
        let idx = DateYearIndex::build(&days);
        let mut got = Vec::new();
        idx.scan_range(&days, Date::from_ymd(1996, 1, 1), Date::from_ymd(1995, 1, 1), |r| {
            got.push(r)
        });
        assert!(got.is_empty());

        let empty = DateYearIndex::build(&[]);
        empty.scan_range(&[], Date::from_ymd(1995, 1, 1), Date::from_ymd(1996, 1, 1), |_| {
            panic!("no rows expected")
        });
    }

    #[test]
    fn segments_replay_scan_range_order() {
        let days = column();
        let idx = DateYearIndex::build(&days);
        let (lo, hi) = (Date::from_ymd(1993, 6, 1), Date::from_ymd(1996, 6, 1));
        // Consuming segments in order must reproduce scan_range exactly,
        // including emission order.
        let mut via_segments = Vec::new();
        for seg in idx.range_segments(lo, hi) {
            for &row in &idx.row_ids()[seg.start..seg.end] {
                if seg.full || (days[row as usize] >= lo.0 && days[row as usize] <= hi.0) {
                    via_segments.push(row);
                }
            }
        }
        let mut via_scan = Vec::new();
        idx.scan_range(&days, lo, hi, |r| via_scan.push(r));
        assert_eq!(via_segments, via_scan);
        // 1994 and 1995 lie strictly inside the range: fully covered.
        let segs = idx.range_segments(lo, hi);
        assert!(segs.iter().any(|s| s.full));
        // Inverted range: no segments.
        assert!(idx.range_segments(hi, lo).is_empty());
    }

    #[test]
    fn buckets_cover_all_rows() {
        let days = column();
        let idx = DateYearIndex::build(&days);
        let total: usize = idx.bucket_sizes().iter().map(|(_, n)| n).sum();
        assert_eq!(total, days.len());
        assert!(idx.approx_bytes() > 0);
    }
}
