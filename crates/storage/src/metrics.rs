//! Portable proxy counters for the paper's hardware-counter experiment.
//!
//! Figure 18 reports LLC cache misses and branch mispredictions measured with
//! `perf`. Hardware counters are neither portable nor available in this
//! environment (see DESIGN.md), so the engines instrument the *mechanisms*
//! those counters capture: pointer-chasing steps in hash chains (cache-miss
//! proxy), data-dependent branch evaluations (misprediction proxy), heap
//! allocations, and materialized tuples.
//!
//! Counting is compiled out entirely unless the `metrics` cargo feature is
//! enabled, so timing benchmarks are unaffected.

use std::sync::atomic::{AtomicU64, Ordering};

/// A snapshot of all proxy counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Hash-bucket probes (one per lookup).
    pub hash_probes: u64,
    /// Steps taken along hash chains / bucket lists (pointer chasing:
    /// cache-miss proxy).
    pub chain_steps: u64,
    /// Data-dependent branch evaluations in operator inner loops
    /// (branch-misprediction proxy).
    pub branch_evals: u64,
    /// Intermediate tuples materialized (copies between operators).
    pub tuples_materialized: u64,
    /// Explicit heap allocations on the critical path.
    pub allocations: u64,
}

static HASH_PROBES: AtomicU64 = AtomicU64::new(0);
static CHAIN_STEPS: AtomicU64 = AtomicU64::new(0);
static BRANCH_EVALS: AtomicU64 = AtomicU64::new(0);
static TUPLES: AtomicU64 = AtomicU64::new(0);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

macro_rules! bump {
    ($counter:ident, $n:expr) => {
        #[cfg(feature = "metrics")]
        $counter.fetch_add($n, Ordering::Relaxed);
        #[cfg(not(feature = "metrics"))]
        let _ = $n;
    };
}

/// Records a hash-bucket probe.
#[inline(always)]
pub fn hash_probe() {
    bump!(HASH_PROBES, 1);
}

/// Records `n` chain-traversal steps.
#[inline(always)]
pub fn chain_steps(n: u64) {
    bump!(CHAIN_STEPS, n);
}

/// Records a data-dependent branch evaluation.
#[inline(always)]
pub fn branch_eval() {
    bump!(BRANCH_EVALS, 1);
}

/// Records a materialized intermediate tuple.
#[inline(always)]
pub fn tuple_materialized() {
    bump!(TUPLES, 1);
}

/// Records a heap allocation on the critical path.
#[inline(always)]
pub fn allocation() {
    bump!(ALLOCS, 1);
}

/// Resets all counters to zero.
pub fn reset() {
    for c in [&HASH_PROBES, &CHAIN_STEPS, &BRANCH_EVALS, &TUPLES, &ALLOCS] {
        c.store(0, Ordering::Relaxed);
    }
}

/// Reads the current counter values.
pub fn snapshot() -> Counters {
    Counters {
        hash_probes: HASH_PROBES.load(Ordering::Relaxed),
        chain_steps: CHAIN_STEPS.load(Ordering::Relaxed),
        branch_evals: BRANCH_EVALS.load(Ordering::Relaxed),
        tuples_materialized: TUPLES.load(Ordering::Relaxed),
        allocations: ALLOCS.load(Ordering::Relaxed),
    }
}

/// Runs `f` with freshly reset counters and returns its result together with
/// the counters it accumulated.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, Counters) {
    reset();
    let out = f();
    (out, snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_isolates_counts() {
        let (_, c) = measure(|| {
            hash_probe();
            chain_steps(3);
            branch_eval();
            tuple_materialized();
            allocation();
        });
        #[cfg(feature = "metrics")]
        assert_eq!(
            c,
            Counters {
                hash_probes: 1,
                chain_steps: 3,
                branch_evals: 1,
                tuples_materialized: 1,
                allocations: 1
            }
        );
        #[cfg(not(feature = "metrics"))]
        assert_eq!(c, Counters::default());
    }
}
