//! Row-layout tables: the default data organization of LegoBase.
//!
//! "By default LegoBase uses the row layout, since this intuitive data
//! organization facilitated fast development of the relational operators"
//! (Section 3.3). The unoptimized engine configurations scan these tables
//! directly; the optimized ones convert them to [`crate::column::ColumnTable`]
//! via the `ColumnStore` transformer.

use crate::schema::Schema;
use crate::value::{Tuple, Value};

/// A table stored as a vector of generic tuples.
#[derive(Clone, Debug, Default)]
pub struct RowTable {
    /// Relation schema.
    pub schema: Schema,
    /// Boxed tuples in insertion order.
    pub rows: Vec<Tuple>,
}

impl RowTable {
    /// Creates an empty table.
    pub fn new(schema: Schema) -> RowTable {
        RowTable { schema, rows: Vec::new() }
    }

    /// Creates an empty table with row capacity.
    pub fn with_capacity(schema: Schema, cap: usize) -> RowTable {
        RowTable { schema, rows: Vec::with_capacity(cap) }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row after checking its arity against the schema.
    pub fn push(&mut self, row: Tuple) {
        debug_assert_eq!(row.len(), self.schema.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Returns the value at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> &Value {
        &self.rows[row][col]
    }

    /// Approximate in-memory footprint in bytes (used by the Fig. 20 memory
    /// experiment to compare against the optimized layouts).
    pub fn approx_bytes(&self) -> usize {
        let mut total = self.rows.capacity() * std::mem::size_of::<Tuple>();
        for row in &self.rows {
            total += row.capacity() * std::mem::size_of::<Value>();
            for v in row {
                if let Value::Str(s) = v {
                    total += s.capacity();
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Type;

    #[test]
    fn push_and_get() {
        let mut t = RowTable::new(Schema::of(&[("a", Type::Int), ("b", Type::Str)]));
        t.push(vec![Value::Int(1), Value::from("x")]);
        t.push(vec![Value::Int(2), Value::from("y")]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(1, 0).as_int(), 2);
        assert_eq!(t.get(0, 1).as_str(), "x");
        assert!(t.approx_bytes() > 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked_in_debug() {
        let mut t = RowTable::new(Schema::of(&[("a", Type::Int)]));
        t.push(vec![Value::Int(1), Value::Int(2)]);
    }
}
