//! Loading-time statistics.
//!
//! LegoBase sizes its preallocated data structures by "performing worst-case
//! analysis on a given query", refined by "statistics collected during data
//! loading" (Sections 3.2.2 and 3.5). These statistics also drive
//! data-structure-initialization hoisting: the key domain `[min, max]` of an
//! attribute determines the dense aggregation array.
//!
//! Beyond the sizing statistics, [`TableStatistics`] carries the *optimizer*
//! statistics — per-table row counts and per-column distinct counts and
//! `[min, max]` bounds for every attribute type — collected in one pass at
//! load time and served through [`Catalog::stats`](crate::Catalog::stats).
//! The cost-based optimizer in `legobase-engine` derives all of its
//! cardinality estimates from them.

use crate::column::{Column, ColumnTable};
use crate::row::RowTable;
use crate::value::Value;
use std::collections::{BTreeSet, HashSet};

/// Default bucket count for collected equi-depth histograms: fine enough to
/// resolve TPC-H's date-range predicates to a few percent, small enough that
/// a whole catalog of histograms stays a few kilobytes.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Register-index bits of the distinct-count sketch (2^12 = 4096 registers,
/// a standard-error of roughly 1.6%).
const SKETCH_BITS: u32 = 12;

/// One-dimensional equi-depth histogram over an orderable attribute.
///
/// Built positionally from the sorted multiset of non-NULL values: bucket
/// boundaries sit at positions `i·n/B` of the sorted array, so every bucket
/// holds `⌊n/B⌋` or `⌈n/B⌉` rows (within one of the ideal depth) by
/// construction. Duplicate-heavy attributes produce *degenerate* buckets
/// whose two bounds coincide — those carry the point mass of heavy hitters,
/// which is how equi-depth histograms encode skew without a separate
/// most-common-values list.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    /// Bucket boundaries in ascending order, `buckets + 1` entries; the
    /// first is the column minimum and the last the column maximum.
    pub bounds: Vec<f64>,
    /// Rows per bucket, parallel to the `bounds` windows.
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Builds an equi-depth histogram with at most `buckets` buckets from an
    /// unsorted multiset of value ranks. Returns `None` when there is no
    /// data to summarize.
    pub fn build(mut ranks: Vec<f64>, buckets: usize) -> Option<Histogram> {
        if ranks.is_empty() || buckets == 0 {
            return None;
        }
        ranks.sort_by(|a, b| a.partial_cmp(b).expect("histogram ranks are never NaN"));
        let n = ranks.len();
        let b = buckets.min(n);
        let mut bounds = Vec::with_capacity(b + 1);
        let mut counts = Vec::with_capacity(b);
        bounds.push(ranks[0]);
        for i in 1..=b {
            let hi = i * n / b;
            let lo = (i - 1) * n / b;
            bounds.push(ranks[hi - 1]);
            counts.push((hi - lo) as u64);
        }
        Some(Histogram { bounds, counts })
    }

    /// Total number of rows the histogram summarizes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Estimated fraction of rows with value `< x` (`≤ x` when `inclusive`),
    /// by linear interpolation inside the straddled bucket. Degenerate
    /// buckets (equal bounds) count fully or not at all — their point mass
    /// never interpolates.
    pub fn fraction_below(&self, x: f64, inclusive: bool) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let mut below = 0.0;
        for (w, &count) in self.bounds.windows(2).zip(&self.counts) {
            let (lo, hi) = (w[0], w[1]);
            if hi < x || (inclusive && hi == x) {
                below += count as f64;
            } else if lo < x && x < hi {
                below += count as f64 * (x - lo) / (hi - lo);
            }
        }
        below / total as f64
    }

    /// Estimated selectivity of `lo ≤ value ≤ hi` (either end may be
    /// unbounded). The full range estimates exactly 1.
    pub fn range_selectivity(&self, lo: Option<f64>, hi: Option<f64>) -> f64 {
        let above = match hi {
            Some(h) => self.fraction_below(h, true),
            None => 1.0,
        };
        let below = match lo {
            Some(l) => self.fraction_below(l, false),
            None => 0.0,
        };
        (above - below).clamp(0.0, 1.0)
    }

    /// Point mass of `value = x` when the histogram resolves it: the summed
    /// weight of degenerate buckets pinned at `x`. Returns `None` when no
    /// degenerate bucket matches, i.e. the value is not a resolved heavy
    /// hitter and the caller should fall back to a uniform `1/ndv` guess.
    pub fn point_mass(&self, x: f64) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let mut mass = 0.0;
        let mut hit = false;
        for (w, &count) in self.bounds.windows(2).zip(&self.counts) {
            if w[0] == x && w[1] == x {
                mass += count as f64;
                hit = true;
            }
        }
        hit.then_some(mass / total as f64)
    }
}

/// Probabilistic distinct-count sketch (hyperloglog with 2^12 registers).
///
/// Each inserted value is hashed once; the register keyed by the hash's top
/// bits keeps the longest run of leading zeros seen in the rest. The
/// harmonic-mean estimate is asymptotically within ~1.6% of the true
/// distinct count — far inside the 15% the optimizer budgets for — and the
/// whole sketch is 4 KiB of plain bytes, so it serializes into the column
/// archive unchanged.
#[derive(Clone, PartialEq, Eq)]
pub struct DistinctSketch {
    registers: Vec<u8>,
}

impl std::fmt::Debug for DistinctSketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistinctSketch").field("estimate", &self.estimate()).finish()
    }
}

impl Default for DistinctSketch {
    fn default() -> DistinctSketch {
        DistinctSketch::new()
    }
}

impl DistinctSketch {
    /// An empty sketch.
    pub fn new() -> DistinctSketch {
        DistinctSketch { registers: vec![0; 1 << SKETCH_BITS] }
    }

    /// Rebuilds a sketch from serialized registers (the archive reader).
    /// Returns `None` if the register count does not match this build.
    pub fn from_registers(registers: Vec<u8>) -> Option<DistinctSketch> {
        (registers.len() == 1 << SKETCH_BITS).then_some(DistinctSketch { registers })
    }

    /// The raw registers (for serialization).
    pub fn registers(&self) -> &[u8] {
        &self.registers
    }

    /// Observes one value.
    pub fn insert(&mut self, v: &Value) {
        let h = value_hash(v);
        let idx = (h >> (64 - SKETCH_BITS)) as usize;
        let rest = h << SKETCH_BITS;
        let rho = (rest.leading_zeros() + 1).min(64 - SKETCH_BITS + 1) as u8;
        if rho > self.registers[idx] {
            self.registers[idx] = rho;
        }
    }

    /// Estimated number of distinct values observed.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let sum: f64 = self.registers.iter().map(|&r| (-(r as f64)).exp2()).sum();
        let raw = alpha * m * m / sum;
        let zeros = self.registers.iter().filter(|&&r| r == 0).count();
        if raw <= 2.5 * m && zeros > 0 {
            // Linear-counting correction for small cardinalities.
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }
}

/// Stable 64-bit hash of a value: FNV-1a over the value's bytes, finished
/// with a splitmix64 avalanche so low-entropy inputs (sequential keys) still
/// spread over all register indices.
fn value_hash(v: &Value) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    match v {
        Value::Null => eat(&[0]),
        Value::Int(i) => eat(&i.to_le_bytes()),
        Value::Float(f) => eat(&f.to_bits().to_le_bytes()),
        Value::Str(s) => eat(s.as_bytes()),
        Value::Date(d) => eat(&d.0.to_le_bytes()),
        Value::Bool(b) => eat(&[*b as u8 + 2]),
    }
    // splitmix64 finalizer.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Maps an orderable value onto the histogram's numeric rank axis. Strings
/// have no meaningful linear rank, so string columns carry no histogram.
pub fn value_rank(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        Value::Date(d) => Some(d.0 as f64),
        Value::Bool(b) => Some(*b as u8 as f64),
        Value::Str(_) | Value::Null => None,
    }
}

/// Statistics of one integer-valued attribute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntColumnStats {
    /// Smallest value seen.
    pub min: i64,
    /// Largest value seen.
    pub max: i64,
    /// Approximate distinct count.
    pub distinct: usize,
}

impl IntColumnStats {
    /// Computes exact statistics over an integer column.
    pub fn of(values: &[i64]) -> Option<IntColumnStats> {
        let min = *values.iter().min()?;
        let max = *values.iter().max()?;
        let distinct = values.iter().collect::<HashSet<_>>().len();
        Some(IntColumnStats { min, max, distinct })
    }

    /// Width of the key domain (slots a dense array would need).
    pub fn domain_width(&self) -> usize {
        (self.max - self.min + 1) as usize
    }

    /// The paper's criterion for direct-array aggregation: the domain must be
    /// dense enough that trading memory for the array is sensible. TPC-H key
    /// domains are "typically ranging up to a couple of thousand sequential
    /// key values" (Section 3.5.2); sparse ones (Q18's O_ORDERKEY) fall back
    /// to the lowered hash map.
    pub fn is_dense(&self, max_slots: usize) -> bool {
        self.domain_width() <= max_slots
    }
}

/// Table-level statistics used for worst-case sizing.
#[derive(Clone, Debug, Default)]
pub struct TableStats {
    /// Number of rows.
    pub row_count: usize,
    /// Per-column stats for integer columns (`None` for other types).
    pub int_columns: Vec<Option<IntColumnStats>>,
}

impl TableStats {
    /// Collects statistics from a row-layout table.
    pub fn of_rows(table: &RowTable) -> TableStats {
        let mut int_columns = Vec::with_capacity(table.schema.len());
        for c in 0..table.schema.len() {
            let ints: Vec<i64> = table
                .rows
                .iter()
                .filter_map(|r| match &r[c] {
                    Value::Int(v) => Some(*v),
                    _ => None,
                })
                .collect();
            if ints.len() == table.len() {
                int_columns.push(IntColumnStats::of(&ints));
            } else {
                int_columns.push(None);
            }
        }
        TableStats { row_count: table.len(), int_columns }
    }

    /// Collects statistics from a column-layout table.
    pub fn of_columns(table: &ColumnTable) -> TableStats {
        let int_columns = table
            .columns
            .iter()
            .map(|c| match c {
                Column::I64(v) => IntColumnStats::of(v),
                _ => None,
            })
            .collect();
        TableStats { row_count: table.len, int_columns }
    }
}

/// Optimizer statistics of one attribute, any type: distinct count plus
/// `[min, max]` bounds under the storage total order (`None` for columns
/// that are entirely NULL).
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnStats {
    /// Exact (when collected) or estimated (when analytic) distinct count of
    /// non-NULL values.
    pub distinct: usize,
    /// Smallest non-NULL value.
    pub min: Option<Value>,
    /// Largest non-NULL value.
    pub max: Option<Value>,
    /// Equi-depth histogram over the value distribution (orderable scalar
    /// columns only; `None` for strings and for analytic statistics).
    pub histogram: Option<Histogram>,
    /// Distinct-count sketch (collected statistics only).
    pub sketch: Option<DistinctSketch>,
}

impl ColumnStats {
    /// Analytic constructor for formula-derived statistics (no distribution
    /// summaries — those only exist where real data was scanned).
    pub fn new(distinct: usize, min: Option<Value>, max: Option<Value>) -> ColumnStats {
        ColumnStats { distinct, min, max, histogram: None, sketch: None }
    }
}

/// Optimizer statistics of one relation: row count plus one
/// [`ColumnStats`] per attribute, in schema order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TableStatistics {
    /// Number of rows.
    pub rows: usize,
    /// Per-attribute statistics, in schema order.
    pub columns: Vec<ColumnStats>,
}

impl TableStatistics {
    /// Collects exact statistics in one pass over a row-layout table:
    /// one ordered distinct-value set per column (whose size and extremes
    /// become NDV and `[min, max]`), plus an equi-depth [`Histogram`] for
    /// every orderable column and a [`DistinctSketch`] for every column.
    pub fn collect(table: &RowTable) -> TableStatistics {
        let arity = table.schema.len();
        let mut sets: Vec<BTreeSet<&Value>> = vec![BTreeSet::new(); arity];
        let mut sketches: Vec<DistinctSketch> = vec![DistinctSketch::new(); arity];
        let mut ranks: Vec<Vec<f64>> = vec![Vec::new(); arity];
        for row in &table.rows {
            for (c, v) in row.iter().enumerate() {
                if !v.is_null() {
                    sets[c].insert(v);
                    sketches[c].insert(v);
                    if let Some(r) = value_rank(v) {
                        ranks[c].push(r);
                    }
                }
            }
        }
        let columns = sets
            .into_iter()
            .zip(sketches)
            .zip(ranks)
            .map(|((set, sketch), ranks)| ColumnStats {
                distinct: set.len(),
                min: set.iter().next().map(|v| (*v).clone()),
                max: set.iter().next_back().map(|v| (*v).clone()),
                histogram: Histogram::build(ranks, HISTOGRAM_BUCKETS),
                sketch: Some(sketch),
            })
            .collect();
        TableStatistics { rows: table.len(), columns }
    }

    /// Analytic constructor (e.g. from the TPC-H scale-factor formulas).
    pub fn analytic(rows: usize, columns: Vec<ColumnStats>) -> TableStatistics {
        TableStatistics { rows, columns }
    }

    /// The statistics of one column, if present.
    pub fn column(&self, idx: usize) -> Option<&ColumnStats> {
        self.columns.get(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnSpec;
    use crate::schema::{Schema, Type};

    fn table() -> RowTable {
        let mut t = RowTable::new(Schema::of(&[("k", Type::Int), ("s", Type::Str)]));
        for k in [5i64, 9, 5, 7] {
            t.push(vec![Value::Int(k), Value::from("x")]);
        }
        t
    }

    #[test]
    fn int_stats_exact() {
        let s = IntColumnStats::of(&[5, 9, 5, 7]).unwrap();
        assert_eq!(s, IntColumnStats { min: 5, max: 9, distinct: 3 });
        assert_eq!(s.domain_width(), 5);
        assert!(s.is_dense(10));
        assert!(!s.is_dense(4));
        assert!(IntColumnStats::of(&[]).is_none());
    }

    #[test]
    fn table_statistics_one_pass() {
        let mut t = RowTable::new(Schema::of(&[("k", Type::Int), ("s", Type::Str)]));
        for (k, s) in [(5i64, "b"), (9, "a"), (5, "b"), (7, "c")] {
            t.push(vec![Value::Int(k), Value::from(s)]);
        }
        let stats = TableStatistics::collect(&t);
        assert_eq!(stats.rows, 4);
        assert_eq!(stats.columns[0].distinct, 3);
        assert_eq!(stats.columns[0].min, Some(Value::Int(5)));
        assert_eq!(stats.columns[0].max, Some(Value::Int(9)));
        assert_eq!(stats.columns[1].distinct, 3);
        assert_eq!(stats.columns[1].min, Some(Value::from("a")));
        assert_eq!(stats.columns[1].max, Some(Value::from("c")));
        assert_eq!(stats.column(2), None);
        // NULLs (outer-join results) are excluded from bounds and NDV.
        let mut n = RowTable::new(Schema::of(&[("x", Type::Int)]));
        n.push(vec![Value::Null]);
        n.push(vec![Value::Int(1)]);
        let s = TableStatistics::collect(&n);
        assert_eq!(s.columns[0].distinct, 1);
        assert_eq!(s.columns[0].min, Some(Value::Int(1)));
    }

    #[test]
    fn equi_depth_histogram_buckets_and_ranges() {
        // 100 uniform values in [0, 99]: every bucket holds exactly depth
        // rows and interpolation recovers range fractions.
        let h = Histogram::build((0..100).map(f64::from).collect(), 10).unwrap();
        assert_eq!(h.counts, vec![10; 10]);
        assert_eq!(h.total(), 100);
        assert!(h.bounds.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(h.range_selectivity(None, None), 1.0);
        assert_eq!(h.range_selectivity(Some(0.0), Some(99.0)), 1.0);
        let half = h.range_selectivity(Some(0.0), Some(49.0));
        assert!((half - 0.5).abs() < 0.06, "half-range estimated {half}");
        assert_eq!(h.range_selectivity(Some(200.0), None), 0.0);
        assert!(Histogram::build(vec![], 8).is_none());
        assert!(Histogram::build(vec![1.0], 0).is_none());
    }

    #[test]
    fn histogram_point_mass_resolves_heavy_hitters() {
        // 90% of the column is the value 7 — degenerate buckets pin it.
        let mut ranks = vec![7.0; 90];
        ranks.extend((0..10).map(f64::from));
        let h = Histogram::build(ranks, 10).unwrap();
        let mass = h.point_mass(7.0).expect("heavy hitter resolved");
        assert!((mass - 0.9).abs() < 0.1, "point mass estimated {mass}");
        assert_eq!(h.point_mass(1234.5), None);
    }

    #[test]
    fn sketch_estimates_distinct_counts() {
        let mut s = DistinctSketch::new();
        for i in 0..5000i64 {
            s.insert(&Value::Int(i % 1000));
        }
        let est = s.estimate();
        assert!((est - 1000.0).abs() / 1000.0 < 0.15, "NDV estimated {est}");
        // Serialization round-trip preserves the registers bit-for-bit.
        let back = DistinctSketch::from_registers(s.registers().to_vec()).unwrap();
        assert_eq!(back, s);
        assert!(DistinctSketch::from_registers(vec![0; 3]).is_none());
        assert_eq!(DistinctSketch::new().estimate(), 0.0);
    }

    #[test]
    fn collect_attaches_distribution_summaries() {
        let stats = TableStatistics::collect(&table());
        let k = &stats.columns[0];
        let h = k.histogram.as_ref().expect("int column has a histogram");
        assert_eq!(h.total(), 4);
        assert_eq!(h.range_selectivity(None, None), 1.0);
        let ndv = k.sketch.as_ref().expect("sketch collected").estimate();
        assert!((ndv - 3.0).abs() < 1.0, "small NDV exact-ish, got {ndv}");
        // Strings: sketch but no histogram.
        let s = &stats.columns[1];
        assert!(s.histogram.is_none());
        assert!(s.sketch.is_some());
        // The analytic constructor carries no summaries.
        assert!(ColumnStats::new(3, None, None).histogram.is_none());
    }

    #[test]
    fn row_and_column_stats_agree() {
        let rows = table();
        let cols = ColumnTable::from_rows(&rows, &ColumnSpec::default());
        let a = TableStats::of_rows(&rows);
        let b = TableStats::of_columns(&cols);
        assert_eq!(a.row_count, b.row_count);
        assert_eq!(a.int_columns[0], b.int_columns[0]);
        assert_eq!(a.int_columns[1], None);
        assert_eq!(b.int_columns[1], None);
    }
}
