//! Loading-time statistics.
//!
//! LegoBase sizes its preallocated data structures by "performing worst-case
//! analysis on a given query", refined by "statistics collected during data
//! loading" (Sections 3.2.2 and 3.5). These statistics also drive
//! data-structure-initialization hoisting: the key domain `[min, max]` of an
//! attribute determines the dense aggregation array.
//!
//! Beyond the sizing statistics, [`TableStatistics`] carries the *optimizer*
//! statistics — per-table row counts and per-column distinct counts and
//! `[min, max]` bounds for every attribute type — collected in one pass at
//! load time and served through [`Catalog::stats`](crate::Catalog::stats).
//! The cost-based optimizer in `legobase-engine` derives all of its
//! cardinality estimates from them.

use crate::column::{Column, ColumnTable};
use crate::row::RowTable;
use crate::value::Value;
use std::collections::{BTreeSet, HashSet};

/// Statistics of one integer-valued attribute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntColumnStats {
    /// Smallest value seen.
    pub min: i64,
    /// Largest value seen.
    pub max: i64,
    /// Approximate distinct count.
    pub distinct: usize,
}

impl IntColumnStats {
    /// Computes exact statistics over an integer column.
    pub fn of(values: &[i64]) -> Option<IntColumnStats> {
        let min = *values.iter().min()?;
        let max = *values.iter().max()?;
        let distinct = values.iter().collect::<HashSet<_>>().len();
        Some(IntColumnStats { min, max, distinct })
    }

    /// Width of the key domain (slots a dense array would need).
    pub fn domain_width(&self) -> usize {
        (self.max - self.min + 1) as usize
    }

    /// The paper's criterion for direct-array aggregation: the domain must be
    /// dense enough that trading memory for the array is sensible. TPC-H key
    /// domains are "typically ranging up to a couple of thousand sequential
    /// key values" (Section 3.5.2); sparse ones (Q18's O_ORDERKEY) fall back
    /// to the lowered hash map.
    pub fn is_dense(&self, max_slots: usize) -> bool {
        self.domain_width() <= max_slots
    }
}

/// Table-level statistics used for worst-case sizing.
#[derive(Clone, Debug, Default)]
pub struct TableStats {
    /// Number of rows.
    pub row_count: usize,
    /// Per-column stats for integer columns (`None` for other types).
    pub int_columns: Vec<Option<IntColumnStats>>,
}

impl TableStats {
    /// Collects statistics from a row-layout table.
    pub fn of_rows(table: &RowTable) -> TableStats {
        let mut int_columns = Vec::with_capacity(table.schema.len());
        for c in 0..table.schema.len() {
            let ints: Vec<i64> = table
                .rows
                .iter()
                .filter_map(|r| match &r[c] {
                    Value::Int(v) => Some(*v),
                    _ => None,
                })
                .collect();
            if ints.len() == table.len() {
                int_columns.push(IntColumnStats::of(&ints));
            } else {
                int_columns.push(None);
            }
        }
        TableStats { row_count: table.len(), int_columns }
    }

    /// Collects statistics from a column-layout table.
    pub fn of_columns(table: &ColumnTable) -> TableStats {
        let int_columns = table
            .columns
            .iter()
            .map(|c| match c {
                Column::I64(v) => IntColumnStats::of(v),
                _ => None,
            })
            .collect();
        TableStats { row_count: table.len, int_columns }
    }
}

/// Optimizer statistics of one attribute, any type: distinct count plus
/// `[min, max]` bounds under the storage total order (`None` for columns
/// that are entirely NULL).
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnStats {
    /// Exact (when collected) or estimated (when analytic) distinct count of
    /// non-NULL values.
    pub distinct: usize,
    /// Smallest non-NULL value.
    pub min: Option<Value>,
    /// Largest non-NULL value.
    pub max: Option<Value>,
}

impl ColumnStats {
    /// Analytic constructor for formula-derived statistics.
    pub fn new(distinct: usize, min: Option<Value>, max: Option<Value>) -> ColumnStats {
        ColumnStats { distinct, min, max }
    }
}

/// Optimizer statistics of one relation: row count plus one
/// [`ColumnStats`] per attribute, in schema order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TableStatistics {
    /// Number of rows.
    pub rows: usize,
    /// Per-attribute statistics, in schema order.
    pub columns: Vec<ColumnStats>,
}

impl TableStatistics {
    /// Collects exact statistics in one pass over a row-layout table:
    /// one ordered distinct-value set per column, whose size and extremes
    /// become NDV and `[min, max]`.
    pub fn collect(table: &RowTable) -> TableStatistics {
        let arity = table.schema.len();
        let mut sets: Vec<BTreeSet<&Value>> = vec![BTreeSet::new(); arity];
        for row in &table.rows {
            for (c, v) in row.iter().enumerate() {
                if !v.is_null() {
                    sets[c].insert(v);
                }
            }
        }
        let columns = sets
            .into_iter()
            .map(|set| ColumnStats {
                distinct: set.len(),
                min: set.iter().next().map(|v| (*v).clone()),
                max: set.iter().next_back().map(|v| (*v).clone()),
            })
            .collect();
        TableStatistics { rows: table.len(), columns }
    }

    /// Analytic constructor (e.g. from the TPC-H scale-factor formulas).
    pub fn analytic(rows: usize, columns: Vec<ColumnStats>) -> TableStatistics {
        TableStatistics { rows, columns }
    }

    /// The statistics of one column, if present.
    pub fn column(&self, idx: usize) -> Option<&ColumnStats> {
        self.columns.get(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnSpec;
    use crate::schema::{Schema, Type};

    fn table() -> RowTable {
        let mut t = RowTable::new(Schema::of(&[("k", Type::Int), ("s", Type::Str)]));
        for k in [5i64, 9, 5, 7] {
            t.push(vec![Value::Int(k), Value::from("x")]);
        }
        t
    }

    #[test]
    fn int_stats_exact() {
        let s = IntColumnStats::of(&[5, 9, 5, 7]).unwrap();
        assert_eq!(s, IntColumnStats { min: 5, max: 9, distinct: 3 });
        assert_eq!(s.domain_width(), 5);
        assert!(s.is_dense(10));
        assert!(!s.is_dense(4));
        assert!(IntColumnStats::of(&[]).is_none());
    }

    #[test]
    fn table_statistics_one_pass() {
        let mut t = RowTable::new(Schema::of(&[("k", Type::Int), ("s", Type::Str)]));
        for (k, s) in [(5i64, "b"), (9, "a"), (5, "b"), (7, "c")] {
            t.push(vec![Value::Int(k), Value::from(s)]);
        }
        let stats = TableStatistics::collect(&t);
        assert_eq!(stats.rows, 4);
        assert_eq!(stats.columns[0].distinct, 3);
        assert_eq!(stats.columns[0].min, Some(Value::Int(5)));
        assert_eq!(stats.columns[0].max, Some(Value::Int(9)));
        assert_eq!(stats.columns[1].distinct, 3);
        assert_eq!(stats.columns[1].min, Some(Value::from("a")));
        assert_eq!(stats.columns[1].max, Some(Value::from("c")));
        assert_eq!(stats.column(2), None);
        // NULLs (outer-join results) are excluded from bounds and NDV.
        let mut n = RowTable::new(Schema::of(&[("x", Type::Int)]));
        n.push(vec![Value::Null]);
        n.push(vec![Value::Int(1)]);
        let s = TableStatistics::collect(&n);
        assert_eq!(s.columns[0].distinct, 1);
        assert_eq!(s.columns[0].min, Some(Value::Int(1)));
    }

    #[test]
    fn row_and_column_stats_agree() {
        let rows = table();
        let cols = ColumnTable::from_rows(&rows, &ColumnSpec::default());
        let a = TableStats::of_rows(&rows);
        let b = TableStats::of_columns(&cols);
        assert_eq!(a.row_count, b.row_count);
        assert_eq!(a.int_columns[0], b.int_columns[0]);
        assert_eq!(a.int_columns[1], None);
        assert_eq!(b.int_columns[1], None);
    }
}
