//! String dictionaries (Section 3.4 of the paper, Table II).
//!
//! Each string attribute gets one dictionary. At load time every distinct
//! string is mapped to a `u32` code; at query time string operations are
//! mapped to integer operations:
//!
//! | string operation | integer counterpart | dictionary kind |
//! |---|---|---|
//! | `equals` / `notEquals`  | `x == y` / `x != y`     | [`DictKind::Normal`] |
//! | `startsWith`            | `x >= start && x <= end`| [`DictKind::Ordered`] |
//! | `indexOfSlice` (word)   | token scan              | [`DictKind::WordToken`] |
//!
//! Operations with no contiguous code range (e.g. `endsWith`) are answered by
//! evaluating the predicate once per *distinct* value and testing a per-code
//! flag afterwards ([`StringDictionary::matching_flags`]) — a generalization of
//! the paper's two-phase ordered dictionary that preserves the key property:
//! the per-tuple cost is a single integer lookup instead of a string loop.

use std::collections::HashMap;

/// The three dictionary variants of Section 3.4.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum DictKind {
    /// Codes assigned in first-appearance order; supports equality only.
    Normal,
    /// Codes assigned in lexicographic order (two-pass construction);
    /// additionally supports ordered operations such as `startsWith`.
    Ordered,
    /// Like `Normal`, but every value is additionally tokenized into words so
    /// that `%word1%word2%` patterns become integer scans.
    WordToken,
}

/// A dictionary for one string attribute.
#[derive(Clone, Debug)]
pub struct StringDictionary {
    kind: DictKind,
    /// code → string.
    strings: Vec<String>,
    /// string → code.
    index: HashMap<String, u32>,
    /// word → word code (WordToken only).
    word_index: HashMap<String, u32>,
    /// code → word codes of the value, in order (WordToken only).
    tokens: Vec<Vec<u32>>,
}

impl StringDictionary {
    /// Builds a dictionary over all values of an attribute. The full value
    /// set must be available up front: the ordered variant needs a first pass
    /// to sort the distinct values (the paper exploits that LegoBase
    /// materializes all input data at load time).
    pub fn build<'a, I>(kind: DictKind, values: I) -> StringDictionary
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut distinct: Vec<&str> = Vec::new();
        let mut seen: HashMap<&str, ()> = HashMap::new();
        for v in values {
            if seen.insert(v, ()).is_none() {
                distinct.push(v);
            }
        }
        if kind == DictKind::Ordered {
            distinct.sort_unstable();
        }
        let mut dict = StringDictionary {
            kind,
            strings: Vec::with_capacity(distinct.len()),
            index: HashMap::with_capacity(distinct.len()),
            word_index: HashMap::new(),
            tokens: Vec::new(),
        };
        for s in distinct {
            let code = dict.strings.len() as u32;
            dict.strings.push(s.to_string());
            dict.index.insert(s.to_string(), code);
            if kind == DictKind::WordToken {
                let toks = s
                    .split(|c: char| !c.is_alphanumeric())
                    .filter(|w| !w.is_empty())
                    .map(|w| {
                        let next = dict.word_index.len() as u32;
                        *dict.word_index.entry(w.to_string()).or_insert(next)
                    })
                    .collect();
                dict.tokens.push(toks);
            }
        }
        dict
    }

    /// The dictionary flavor this was built as.
    pub fn kind(&self) -> DictKind {
        self.kind
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when no distinct value was seen.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// The integer code of a string, if it occurs in the attribute.
    pub fn code(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// The string for a code.
    pub fn decode(&self, code: u32) -> &str {
        &self.strings[code as usize]
    }

    /// `startsWith` lowered to an inclusive code range (ordered dictionaries
    /// only, Table II). Returns `None` when no value has the prefix.
    pub fn prefix_range(&self, prefix: &str) -> Option<(u32, u32)> {
        assert_eq!(self.kind, DictKind::Ordered, "prefix_range requires an ordered dictionary");
        let start = self.strings.partition_point(|s| s.as_str() < prefix);
        let end = self.strings.partition_point(|s| s.starts_with(prefix) || s.as_str() < prefix);
        if start < end {
            Some((start as u32, end as u32 - 1))
        } else {
            None
        }
    }

    /// Evaluates an arbitrary string predicate once per distinct value and
    /// returns a per-code flag vector; per-tuple evaluation then becomes a
    /// single indexed load. Used for `endsWith`, `contains`, and other
    /// operations without a contiguous code range.
    pub fn matching_flags(&self, pred: impl Fn(&str) -> bool) -> Vec<bool> {
        self.strings.iter().map(|s| pred(s)).collect()
    }

    /// Word code lookup (word-token dictionaries only).
    pub fn word_code(&self, word: &str) -> Option<u32> {
        self.word_index.get(word).copied()
    }

    /// `indexOfSlice` on a single word, lowered to an integer scan over the
    /// value's token list. This is the only dictionary operation that still
    /// contains a loop (Section 3.4), but over integers rather than bytes.
    pub fn contains_word(&self, code: u32, word_code: u32) -> bool {
        self.tokens[code as usize].contains(&word_code)
    }

    /// `%w1%w2%` patterns (e.g. TPC-H Q13's `special … requests`): does `w1`
    /// occur strictly before some later occurrence of `w2`?
    pub fn contains_word_seq(&self, code: u32, w1: u32, w2: u32) -> bool {
        let toks = &self.tokens[code as usize];
        match toks.iter().position(|&t| t == w1) {
            Some(p) => toks[p + 1..].contains(&w2),
            None => false,
        }
    }

    /// Approximate memory footprint of the dictionary in bytes (Fig. 20:
    /// dictionaries trade memory for speed).
    pub fn approx_bytes(&self) -> usize {
        let strings: usize = self.strings.iter().map(|s| s.capacity() + 24).sum();
        let index: usize = self.index.keys().map(|s| s.capacity() + 32).sum();
        let tokens: usize = self.tokens.iter().map(|t| t.capacity() * 4 + 24).sum();
        strings + index + tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn values() -> Vec<&'static str> {
        vec!["MAIL", "SHIP", "AIR", "MAIL", "RAIL", "AIR", "REG AIR"]
    }

    #[test]
    fn normal_assigns_first_appearance_codes() {
        let d = StringDictionary::build(DictKind::Normal, values());
        assert_eq!(d.len(), 5);
        assert_eq!(d.code("MAIL"), Some(0));
        assert_eq!(d.code("SHIP"), Some(1));
        assert_eq!(d.code("nope"), None);
        assert_eq!(d.decode(d.code("RAIL").unwrap()), "RAIL");
    }

    #[test]
    fn ordered_preserves_lexicographic_order() {
        let d = StringDictionary::build(DictKind::Ordered, values());
        let codes: Vec<u32> =
            ["AIR", "MAIL", "RAIL", "REG AIR", "SHIP"].iter().map(|s| d.code(s).unwrap()).collect();
        assert_eq!(codes, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn prefix_range_matches_starts_with() {
        let d = StringDictionary::build(
            DictKind::Ordered,
            vec!["PROMO ANODIZED", "PROMO BURNISHED", "STANDARD TIN", "ECONOMY BRASS"],
        );
        let (lo, hi) = d.prefix_range("PROMO").unwrap();
        for code in 0..d.len() as u32 {
            let in_range = code >= lo && code <= hi;
            assert_eq!(in_range, d.decode(code).starts_with("PROMO"));
        }
        assert!(d.prefix_range("ZZZ").is_none());
        // Prefix equal to a full value.
        let (lo2, hi2) = d.prefix_range("STANDARD TIN").unwrap();
        assert_eq!(lo2, hi2);
    }

    #[test]
    fn matching_flags_general_predicates() {
        let d = StringDictionary::build(
            DictKind::Ordered,
            vec!["LARGE BRASS", "SMALL TIN", "MEDIUM BRASS"],
        );
        let flags = d.matching_flags(|s| s.ends_with("BRASS"));
        for code in 0..d.len() as u32 {
            assert_eq!(flags[code as usize], d.decode(code).ends_with("BRASS"));
        }
    }

    #[test]
    fn word_token_sequences() {
        let d = StringDictionary::build(
            DictKind::WordToken,
            vec![
                "carefully special packages requests",
                "special requests sleep",
                "requests before special",
                "nothing here",
            ],
        );
        let special = d.word_code("special").unwrap();
        let requests = d.word_code("requests").unwrap();
        let check = |s: &str| d.contains_word_seq(d.code(s).unwrap(), special, requests);
        assert!(check("carefully special packages requests"));
        assert!(check("special requests sleep"));
        assert!(!check("requests before special"));
        assert!(!check("nothing here"));
        assert!(d.contains_word(d.code("nothing here").unwrap(), d.word_code("here").unwrap()));
    }

    #[test]
    fn footprint_nonzero() {
        let d = StringDictionary::build(DictKind::WordToken, values());
        assert!(d.approx_bytes() > 0);
    }
}
