//! Property tests for the optimizer statistics (PR 8): equi-depth histogram
//! invariants and distinct-sketch accuracy over random distributions. These
//! are the contracts the cost model leans on — a histogram whose buckets
//! drift from the ideal depth or whose full range estimates less than the
//! whole table silently mis-prices every plan.

use legobase_storage::stats::{value_rank, Histogram};
use legobase_storage::{Date, DistinctSketch, Value};
use proptest::prelude::*;
use std::collections::HashSet;

/// Checks every structural histogram invariant for one rank multiset.
fn check_invariants(ranks: Vec<f64>, buckets: usize) {
    let n = ranks.len();
    let lo = ranks.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = ranks.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let h = Histogram::build(ranks, buckets).expect("non-empty input builds");
    // Bounds are sorted and pinned to the column extremes.
    prop_assert!(h.bounds.windows(2).all(|w| w[0] <= w[1]), "bounds unsorted");
    prop_assert_eq!(h.bounds[0], lo);
    prop_assert_eq!(*h.bounds.last().unwrap(), hi);
    // Every bucket holds the ideal depth within one row.
    let b = h.counts.len();
    prop_assert!(b <= buckets && b >= 1);
    let depth = n as f64 / b as f64;
    for (i, &c) in h.counts.iter().enumerate() {
        prop_assert!((c as f64 - depth).abs() < 1.0, "bucket {i} holds {c}, depth {depth}");
    }
    prop_assert_eq!(h.total(), n as u64);
    // The full range — closed, open, and clamped beyond the extremes —
    // estimates exactly the whole table.
    prop_assert_eq!(h.range_selectivity(None, None), 1.0);
    prop_assert_eq!(h.range_selectivity(Some(lo), Some(hi)), 1.0);
    prop_assert_eq!(h.range_selectivity(Some(lo - 1.0), Some(hi + 1.0)), 1.0);
    // Any sub-range estimate is a valid fraction.
    let mid = (lo + hi) / 2.0;
    let s = h.range_selectivity(Some(lo), Some(mid));
    prop_assert!((0.0..=1.0).contains(&s));
}

/// Relative-error check for one sketched value sequence.
fn check_sketch(values: &[Value]) {
    let mut sketch = DistinctSketch::new();
    let mut exact: HashSet<String> = HashSet::new();
    for v in values {
        sketch.insert(v);
        exact.insert(format!("{v:?}"));
    }
    let (est, truth) = (sketch.estimate(), exact.len() as f64);
    prop_assert!(
        (est - truth).abs() / truth <= 0.15,
        "sketch estimated {est} for true NDV {truth}"
    );
}

proptest! {
    /// Histogram invariants over random integer multisets (arbitrary
    /// duplication and skew) and random bucket budgets.
    #[test]
    fn histogram_invariants_over_ints(
        values in proptest::collection::vec(-10_000i64..10_000, 1..400),
        buckets in 1usize..80,
    ) {
        let ranks = values.iter().map(|&v| v as f64).collect();
        check_invariants(ranks, buckets);
    }

    /// The same invariants over date columns (ranks are day numbers).
    #[test]
    fn histogram_invariants_over_dates(
        days in proptest::collection::vec(8000i32..11000, 1..400),
        buckets in 1usize..80,
    ) {
        let ranks: Vec<f64> = days
            .iter()
            .map(|&d| value_rank(&Value::Date(Date(d))).expect("dates are orderable"))
            .collect();
        check_invariants(ranks, buckets);
    }

    /// Heavy-hitter skew: a dominant value must surface as point mass close
    /// to its true frequency, never as an interpolated smear.
    #[test]
    fn histogram_point_mass_tracks_skew(
        hitter in -100i64..100,
        dominance in 60usize..300,
        noise in proptest::collection::vec(-100i64..100, 1..40),
    ) {
        let mut ranks: Vec<f64> = vec![hitter as f64; dominance];
        ranks.extend(noise.iter().map(|&v| v as f64));
        let n = ranks.len() as f64;
        let truth = ranks.iter().filter(|&&r| r == hitter as f64).count() as f64 / n;
        let h = Histogram::build(ranks, 32).unwrap();
        let mass = h.point_mass(hitter as f64).expect("dominant value resolves");
        // Positional bucketing loses at most one bucket of rows (a depth of
        // n/32, plus rounding) at each end of the hitter's run.
        let slack = 2.0 / 32.0 + 2.0 / n;
        prop_assert!((mass - truth).abs() <= slack, "mass {mass}, truth {truth}");
    }

    /// Sketch NDV stays within 15% relative error for random i64 columns.
    #[test]
    fn sketch_accuracy_over_ints(
        values in proptest::collection::vec(-3000i64..3000, 1..2000),
    ) {
        let vals: Vec<Value> = values.into_iter().map(Value::Int).collect();
        check_sketch(&vals);
    }

    /// … and for date columns.
    #[test]
    fn sketch_accuracy_over_dates(
        days in proptest::collection::vec(6000i32..12000, 1..2000),
    ) {
        let vals: Vec<Value> = days.into_iter().map(|d| Value::Date(Date(d))).collect();
        check_sketch(&vals);
    }

    /// … and for dictionary-style string columns (small alphabets produce
    /// exactly the collision-heavy distributions dictionaries see).
    #[test]
    fn sketch_accuracy_over_dict_strings(
        words in proptest::collection::vec("[a-e]{1,4}", 1..1500),
    ) {
        let vals: Vec<Value> = words.into_iter().map(Value::Str).collect();
        check_sketch(&vals);
    }
}
