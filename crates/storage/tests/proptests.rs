//! Property tests for the storage substrate: every specialized structure is
//! compared against its obvious `std` model under random operation
//! sequences, which is exactly the guarantee the paper's lowering
//! transformers assume ("the lowered structure behaves like the generic
//! one").

use legobase_storage::dateindex::DateYearIndex;
use legobase_storage::dict::{DictKind, StringDictionary};
use legobase_storage::partition::{ForeignKeyPartition, PrimaryKeyIndex};
use legobase_storage::specialized::{ChainedArrayMap, ChainedMultiMap};
use legobase_storage::Date;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

proptest! {
    /// The lowered chained-array map behaves like `HashMap` for
    /// get_or_insert_with + get under arbitrary (colliding) key sequences.
    #[test]
    fn chained_map_equals_hashmap_model(
        ops in proptest::collection::vec((0u64..64, -100i64..100), 1..200),
        probes in proptest::collection::vec(0u64..80, 0..50),
    ) {
        let mut lowered: ChainedArrayMap<i64> = ChainedArrayMap::with_capacity(16);
        let mut model: HashMap<u64, i64> = HashMap::new();
        for (k, v) in ops {
            *lowered.get_or_insert_with(k, || 0) += v;
            *model.entry(k).or_insert(0) += v;
        }
        prop_assert_eq!(lowered.len(), model.len());
        for (k, v) in lowered.iter() {
            prop_assert_eq!(model.get(&k), Some(v));
        }
        for p in probes {
            prop_assert_eq!(lowered.get(p), model.get(&p));
        }
    }

    /// The chained multi-map returns exactly the bindings of a
    /// `HashMap<_, Vec<_>>` model (as sets — chain order is reversed).
    #[test]
    fn multimap_equals_model(
        inserts in proptest::collection::vec((0u64..32, 0u32..1000), 0..150),
        probes in proptest::collection::vec(0u64..40, 1..30),
    ) {
        let mut mm = ChainedMultiMap::with_capacity(8);
        let mut model: HashMap<u64, Vec<u32>> = HashMap::new();
        for (k, row) in inserts {
            mm.insert(k, row);
            model.entry(k).or_default().push(row);
        }
        for p in probes {
            let mut got = Vec::new();
            mm.for_each_match(p, |r| got.push(r));
            got.sort_unstable();
            let mut want = model.get(&p).cloned().unwrap_or_default();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }

    /// Ordered dictionaries preserve lexicographic order on codes, and
    /// prefix ranges match `str::starts_with` exactly.
    #[test]
    fn ordered_dictionary_preserves_order(
        values in proptest::collection::vec("[a-d]{0,6}", 1..60),
        prefix in "[a-d]{0,3}",
    ) {
        let dict = StringDictionary::build(DictKind::Ordered, values.iter().map(String::as_str));
        for a in &values {
            for b in &values {
                let (ca, cb) = (dict.code(a).unwrap(), dict.code(b).unwrap());
                prop_assert_eq!(a.cmp(b), ca.cmp(&cb), "codes must mirror string order");
            }
        }
        let range = dict.prefix_range(&prefix);
        for code in 0..dict.len() as u32 {
            let in_range = range.is_some_and(|(lo, hi)| code >= lo && code <= hi);
            prop_assert_eq!(in_range, dict.decode(code).starts_with(prefix.as_str()));
        }
    }

    /// Word-token dictionaries agree with a direct word-sequence scan.
    #[test]
    fn word_token_dictionary_matches_scan(
        values in proptest::collection::vec("([a-c]{1,3} ){0,5}[a-c]{1,3}", 1..40),
        w1 in "[a-c]{1,3}",
        w2 in "[a-c]{1,3}",
    ) {
        let dict = StringDictionary::build(DictKind::WordToken, values.iter().map(String::as_str));
        let (c1, c2) = (dict.word_code(&w1), dict.word_code(&w2));
        for v in &values {
            let code = dict.code(v).unwrap();
            let got = match (c1, c2) {
                (Some(c1), Some(c2)) => dict.contains_word_seq(code, c1, c2),
                _ => false,
            };
            // Model: w1 occurs, then w2 strictly later.
            let words: Vec<&str> = v.split(' ').filter(|w| !w.is_empty()).collect();
            let want = words
                .iter()
                .position(|w| **w == *w1.as_str())
                .is_some_and(|i| words[i + 1..].iter().any(|w| **w == *w2.as_str()));
            prop_assert_eq!(got, want, "value {:?}", v);
        }
    }

    /// FK partitions return exactly the row sets of a hash-grouping model,
    /// including out-of-range probes.
    #[test]
    fn fk_partition_equals_grouping(
        keys in proptest::collection::vec(-20i64..20, 0..120),
        probes in proptest::collection::vec(-30i64..30, 1..40),
    ) {
        let part = ForeignKeyPartition::build(&keys);
        let mut model: HashMap<i64, Vec<u32>> = HashMap::new();
        for (row, &k) in keys.iter().enumerate() {
            model.entry(k).or_default().push(row as u32);
        }
        for p in probes {
            let got: Vec<u32> = part.bucket(p).to_vec();
            let want = model.get(&p).cloned().unwrap_or_default();
            prop_assert_eq!(got, want);
        }
    }

    /// PK indexes invert the key column exactly.
    #[test]
    fn pk_index_inverts_column(mut keys in proptest::collection::vec(-500i64..500, 1..100)) {
        keys.sort_unstable();
        keys.dedup();
        let idx = PrimaryKeyIndex::build(&keys);
        for (row, &k) in keys.iter().enumerate() {
            prop_assert_eq!(idx.lookup(k), Some(row as u32));
        }
        for probe in [-501, 501, 0, 250] {
            let want = keys.iter().position(|&k| k == probe).map(|r| r as u32);
            prop_assert_eq!(idx.lookup(probe), want);
        }
    }

    /// Date-index range scans return exactly the rows a naive filter does,
    /// for arbitrary date columns and ranges.
    #[test]
    fn date_index_equals_naive_filter(
        days in proptest::collection::vec(8000i32..11000, 0..120),
        lo in 7900i32..11100,
        width in 0i32..1500,
    ) {
        let idx = DateYearIndex::build(&days);
        let (lo, hi) = (Date(lo), Date(lo + width));
        let mut got: Vec<u32> = Vec::new();
        idx.scan_range(&days, lo, hi, |r| got.push(r));
        got.sort_unstable();
        let want: Vec<u32> = days
            .iter()
            .enumerate()
            .filter(|(_, &d)| d >= lo.0 && d <= hi.0)
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Date round-trips hold for the whole supported range.
    #[test]
    fn date_roundtrip(day in -200_000i32..200_000) {
        let (y, m, d) = Date(day).ymd();
        prop_assert_eq!(Date::from_ymd(y, m, d), Date(day));
    }

    /// `Value` ordering is antisymmetric and transitive (the engines sort
    /// and group with it).
    #[test]
    fn value_total_order(
        a in arb_value(),
        b in arb_value(),
        c in arb_value(),
    ) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
    }
}

fn arb_value() -> impl Strategy<Value = legobase_storage::Value> {
    use legobase_storage::Value as V;
    prop_oneof![
        Just(V::Null),
        any::<bool>().prop_map(V::Bool),
        (-1000i64..1000).prop_map(V::Int),
        (-100.0f64..100.0).prop_map(V::Float),
        (8000i32..11000).prop_map(|d| V::Date(Date(d))),
        "[a-z]{0,5}".prop_map(V::Str),
    ]
}

/// Dictionary determinism: identical value sequences yield identical
/// dictionaries regardless of duplication pattern.
#[test]
fn dictionary_codes_depend_only_on_distinct_order() {
    let a = StringDictionary::build(DictKind::Normal, ["x", "y", "x", "z"]);
    let b = StringDictionary::build(DictKind::Normal, ["x", "y", "z", "y", "x"]);
    for s in ["x", "y", "z"] {
        assert_eq!(a.code(s), b.code(s));
    }
    let distinct: HashSet<u32> = (0..a.len() as u32).collect();
    assert_eq!(distinct.len(), 3);
}

proptest! {
    /// Frame-of-reference packing round-trips random fills at every offset
    /// width 1..=64, and pre-encoded literals agree with the frame of
    /// reference (PR 7 encoded columns).
    #[test]
    fn packed_ints_roundtrip_every_width(
        width in 1u32..=64,
        seeds in proptest::collection::vec(any::<u64>(), 1..200),
        base in -1_000_000i64..1_000_000,
    ) {
        use legobase_storage::PackedInts;
        let hi = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        // Saturate toward the width's domain so every width is exercised,
        // including offsets that straddle word boundaries.
        let vals: Vec<i64> = seeds
            .iter()
            .map(|s| if width == 64 { *s as i64 } else { base.wrapping_add((s & hi) as i64) })
            .collect();
        let p = PackedInts::from_values(&vals);
        prop_assert!(u32::from(p.width()) <= width, "width {} > requested {width}", p.width());
        for (i, &v) in vals.iter().enumerate() {
            prop_assert_eq!(p.get(i), v, "row {}", i);
            prop_assert_eq!(p.encode(v), Some(v.wrapping_sub(p.base()) as u64));
        }
        if p.base() > i64::MIN {
            prop_assert_eq!(p.encode(p.base() - 1), None);
        }
        if p.max() < i64::MAX {
            prop_assert_eq!(p.encode(p.max() + 1), None);
        }
        // Serialized parts reassemble into the same column.
        let back = PackedInts::from_parts(p.base(), p.max(), p.width(), p.len(), p.words().to_vec());
        prop_assert_eq!(back.as_ref(), Some(&p));
    }

    /// Batch unpacking equals per-element `get` exactly: arbitrary ranges
    /// (morsel boundaries straddling u64 words, non-multiple-of-64 tails)
    /// at the ISSUE's edge widths {1, 7, 63, 64}, plus a random width, plus
    /// width-0 constant columns — and the memoized whole-column decode
    /// agrees too (PR 10 batch unpack kernels).
    #[test]
    fn batch_unpack_equals_per_element_get(
        width_sel in 0usize..5,
        rand_width in 1u32..=64,
        seeds in proptest::collection::vec(any::<u64>(), 1..400),
        start_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
        constant in -5000i64..5000,
    ) {
        use legobase_storage::PackedInts;
        let width = [1u32, 7, 63, 64, rand_width][width_sel];
        let hi = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let vals: Vec<i64> = seeds.iter().map(|s| (s & hi) as i64).collect();
        let p = PackedInts::from_values(&vals);
        let start = (start_frac * vals.len() as f64) as usize;
        let len = ((len_frac * (vals.len() - start) as f64) as usize).min(vals.len() - start);
        let mut out = vec![0i64; len];
        p.unpack_range(start, &mut out);
        for (k, &got) in out.iter().enumerate() {
            prop_assert_eq!(got, p.get(start + k), "width {} row {}", width, start + k);
        }
        let whole = p.decoded();
        prop_assert_eq!(whole.len(), vals.len());
        for (i, &v) in vals.iter().enumerate() {
            prop_assert_eq!(whole[i], v, "decoded row {}", i);
        }
        // Width-0 constant columns batch-fill the base.
        let c = PackedInts::from_values(&vec![constant; seeds.len()]);
        prop_assert_eq!(c.width(), 0);
        let mut cout = vec![0i64; len];
        c.unpack_range(start, &mut cout);
        prop_assert!(cout.iter().all(|&v| v == constant));
    }

    /// Every encodable column layout (int, date, dictionary codes) survives
    /// encode → read-back and encode → decode bit-identically.
    #[test]
    fn column_encodings_preserve_values(
        ints in proptest::collection::vec(-5000i64..5000, 64..200),
        days in proptest::collection::vec(8000i32..11000, 64..200),
        words in proptest::collection::vec("[a-c]{1,3}", 64..200),
    ) {
        use legobase_storage::{Column, ColumnStats};
        use std::sync::Arc;
        let dict = StringDictionary::build(DictKind::Normal, words.iter().map(String::as_str));
        let codes: Vec<u32> = words.iter().map(|w| dict.code(w).unwrap()).collect();
        let cols = [
            Column::I64(Arc::new(ints)),
            Column::Date(Arc::new(days)),
            Column::Dict(Arc::new(codes), Arc::new(dict)),
        ];
        let stats = ColumnStats::new(0, None, None);
        for col in &cols {
            let enc = col.encode(&stats).expect("small domains must encode");
            prop_assert!(enc.approx_bytes() < col.approx_bytes());
            for r in 0..col.len() {
                prop_assert_eq!(enc.value_at(r), col.value_at(r), "row {}", r);
                prop_assert_eq!(enc.decode().value_at(r), col.value_at(r), "row {}", r);
            }
        }
    }
}
