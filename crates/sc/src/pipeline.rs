//! The transformation pipeline (Fig. 5b).
//!
//! Developers assemble transformers in an explicit order; cleanup passes
//! (parameter promotion + DCE + partial evaluation) are re-run after every
//! domain-specific phase, exactly as in the paper's pipeline listing. The
//! pipeline records a per-phase trace (the progressive lowering of Fig. 7)
//! and per-phase timings (the compilation-overhead experiment of Fig. 22).

use crate::build::build_ir;
use crate::cgen;
use crate::ir::Program;
use crate::rules::{TransformCtx, Transformer};
use crate::transform::{
    Cleanup, CodeMotionHoisting, ColumnStore, Encode, FieldPromotion, FineGrained, HashMapLowering,
    HorizontalFusion, Parallelize, PartitioningAndDateIndices, ScalaToCLowering,
    SingletonHashMapToValue, StringDictionary,
};
use legobase_engine::{EngineKind, QueryPlan, Settings, Specialization};
use legobase_storage::Catalog;
use std::time::{Duration, Instant};

/// An ordered list of transformers.
pub struct Pipeline {
    transformers: Vec<Box<dyn Transformer>>,
}

impl Pipeline {
    /// Creates an empty pipeline.
    pub fn new() -> Pipeline {
        Pipeline { transformers: Vec::new() }
    }

    /// `pipeline += transformer` (Fig. 5b).
    pub fn add(&mut self, t: impl Transformer + 'static) -> &mut Self {
        self.transformers.push(Box::new(t));
        self
    }

    /// Builds the LegoBase pipeline for a settings vector, mirroring the
    /// paper's listing: optional phases are included based on configuration
    /// flags, and the cleanup pass runs after each one.
    pub fn for_settings(settings: &Settings) -> Pipeline {
        let mut p = Pipeline::new();
        // OperatorInlining is the plan→IR translation itself (crate::build).
        p.add(SingletonHashMapToValue);
        p.add(Cleanup);
        if settings.compiled_exprs {
            // Fuse sibling loops over the same relation before the
            // data-structure phases specialize their bodies (footnote 18).
            p.add(HorizontalFusion);
        }
        if settings.partitioning || settings.date_indices {
            p.add(PartitioningAndDateIndices);
            p.add(Cleanup);
        }
        if settings.hashmap_lowering {
            p.add(HashMapLowering);
        }
        if settings.string_dict {
            p.add(StringDictionary);
        }
        if settings.column_store || settings.field_removal {
            p.add(ColumnStore);
            p.add(Cleanup);
        }
        if settings.encoding && settings.engine == EngineKind::Specialized {
            // Clears touched Int/Date/dictionary base columns for packed
            // storage; runs after StringDictionary so the dictionary
            // decisions it piggybacks on are final. Only the specialized
            // executor consumes encoded columns.
            p.add(Encode);
        }
        if settings.code_motion {
            p.add(CodeMotionHoisting);
            p.add(Cleanup);
        }
        if settings.parallelism > 1 {
            // Decides (and records) the morsel-driven degree once the
            // scan-shaped loops have reached their final form.
            p.add(Parallelize);
        }
        if settings.compiled_exprs {
            p.add(FineGrained);
            // Flatten repeated row-field reads to locals once the layout
            // transformers have settled the access form (Table IV:
            // "Flattening Nested Structs").
            p.add(FieldPromotion);
        }
        p.add(ScalaToCLowering);
        p.add(Cleanup);
        p
    }

    /// The ordered phase names (for display and tests).
    pub fn phase_names(&self) -> Vec<&'static str> {
        self.transformers.iter().map(|t| t.name()).collect()
    }

    /// Runs the pipeline over a query.
    pub fn run(&self, query: &QueryPlan, catalog: &Catalog, settings: &Settings) -> CompileResult {
        let start = Instant::now();
        let mut ctx = TransformCtx { catalog, settings, query, spec: Specialization::default() };
        let mut prog = build_ir(query, catalog);
        let mut trace = vec![PhaseTrace {
            name: "OperatorInlining",
            size: prog.size(),
            duration: start.elapsed(),
        }];
        let mut program_stages = vec![prog.clone()];
        for t in &self.transformers {
            let t0 = Instant::now();
            prog = t.run(prog, &mut ctx);
            trace.push(PhaseTrace { name: t.name(), size: prog.size(), duration: t0.elapsed() });
            program_stages.push(prog.clone());
        }
        let cgen_start = Instant::now();
        let c_source = cgen::emit_c(&prog, catalog, &ctx.spec);
        let cgen_time = cgen_start.elapsed();
        CompileResult {
            program: prog,
            stages: program_stages,
            spec: ctx.spec,
            trace,
            c_source,
            optimize_time: start.elapsed() - cgen_time,
            cgen_time,
        }
    }
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline::for_settings(&Settings::optimized())
    }
}

/// One pipeline phase's outcome.
#[derive(Clone, Debug)]
pub struct PhaseTrace {
    /// Transformer name.
    pub name: &'static str,
    /// IR size after the phase.
    pub size: usize,
    /// Time spent in the phase.
    pub duration: Duration,
}

/// The output of compiling one query.
pub struct CompileResult {
    /// Final (lowest-level) program.
    pub program: Program,
    /// Program snapshot after every phase (Fig. 7's progressive lowering).
    pub stages: Vec<Program>,
    /// Load/execution decisions for the specialized engine.
    pub spec: Specialization,
    /// Per-phase trace (sizes and timings).
    pub trace: Vec<PhaseTrace>,
    /// Generated C source.
    pub c_source: String,
    /// Time spent in SC optimization (Fig. 22's "SC Optimization" bar).
    pub optimize_time: Duration,
    /// Time spent stringifying C (part of the CLang bar in the paper).
    pub cgen_time: Duration,
}

/// Convenience: compiles `query` under `settings` with the standard
/// LegoBase pipeline.
pub fn compile(query: &QueryPlan, catalog: &Catalog, settings: &Settings) -> CompileResult {
    Pipeline::for_settings(settings).run(query, catalog, settings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{AggStoreKind, Stmt};
    use legobase_engine::Config;

    fn catalog() -> Catalog {
        legobase_tpch::catalog()
    }

    #[test]
    fn pipeline_order_follows_settings() {
        let all = Pipeline::for_settings(&Settings::optimized());
        let names = all.phase_names();
        assert!(names.contains(&"PartitioningAndDateIndices"));
        assert!(names.contains(&"HashMapLowering"));
        assert!(names.contains(&"StringDictionary"));
        assert!(names.contains(&"ColumnStore"));
        let pos = |n: &str| names.iter().position(|x| *x == n).unwrap();
        assert!(pos("PartitioningAndDateIndices") < pos("HashMapLowering"));
        assert!(pos("HashMapLowering") < pos("StringDictionary"));
        // Encode piggybacks on the dictionary decisions, so it runs after.
        assert!(pos("StringDictionary") < pos("Encode"));
        assert_eq!(*names.last().unwrap(), "ParamPromDCEAndPartiallyEvaluate");
        // Loop fusion runs before the data-structure phases; field promotion
        // after the layout has settled.
        assert!(pos("HorizontalFusion") < pos("PartitioningAndDateIndices"));
        assert!(pos("ColumnStore") < pos("FieldPromotion"));

        // Parallelize joins the pipeline only when a degree > 1 is requested.
        assert!(!names.contains(&"Parallelize"));
        let par = Pipeline::for_settings(&Settings::optimized().with_parallelism(4));
        let par_names = par.phase_names();
        assert!(par_names.contains(&"Parallelize"));
        let ppos = |n: &str| par_names.iter().position(|x| *x == n).unwrap();
        assert!(ppos("HashMapHoisting+MallocHoisting") < ppos("Parallelize"));
        assert!(ppos("Parallelize") < ppos("ScalaToCLowering"));

        let naive = Pipeline::for_settings(&Config::NaiveC.settings());
        assert!(!naive.phase_names().contains(&"HashMapLowering"));
        // Encoding is a specialized-executor decision: the row engines never
        // see packed columns, and the LEGOBASE_ENCODING=0 ablation drops the
        // phase entirely.
        assert!(!naive.phase_names().contains(&"Encode"));
        let unencoded = Pipeline::for_settings(&Settings::optimized().with(|s| s.encoding = false));
        assert!(!unencoded.phase_names().contains(&"Encode"));
        // The interpreted variants skip the compiled-code passes entirely.
        let scala = Pipeline::for_settings(&Config::OptScala.settings());
        assert!(!scala.phase_names().contains(&"FieldPromotion"));
        assert!(!scala.phase_names().contains(&"HorizontalFusion"));
    }

    #[test]
    fn q6_lowered_to_single_value_and_date_index() {
        let cat = catalog();
        let q = legobase_queries::query(&cat, 6);
        let settings = Settings::optimized();
        let result = compile(&q, &cat, &settings);
        // Singleton aggregation collapsed to a single value.
        assert_eq!(
            result
                .program
                .count(|s| matches!(s, Stmt::AggMapNew { store: AggStoreKind::SingleValue, .. })),
            1
        );
        // The shipdate range scan goes through the date index.
        assert_eq!(result.program.count(|s| matches!(s, Stmt::DateIndexLoop { .. })), 1);
        assert!(result.spec.has_date_index("lineitem", 10));
        // The column layout replaced field accesses.
        let mut col_loads = 0;
        result.program.walk(&mut |s| {
            let mut count = |e: &crate::ir::Expr| {
                e.visit(&mut |x| {
                    if matches!(x, crate::ir::Expr::ColumnLoad { .. }) {
                        col_loads += 1;
                    }
                });
            };
            if let Stmt::AggUpdate { updates, .. } = s {
                for (_, e) in updates {
                    count(e);
                }
            }
        });
        assert!(col_loads > 0, "Q6 aggregation should read columns directly");
        // Unused-field removal keeps only the referenced lineitem columns.
        let used = &result.spec.used_columns["lineitem"];
        assert!(used.len() <= 5, "Q6 references 4 attributes, got {used:?}");
    }

    #[test]
    fn encode_clears_touched_int_date_and_dict_columns() {
        let cat = catalog();
        let q = legobase_queries::query(&cat, 1);
        let result = compile(&q, &cat, &Settings::optimized());
        let li = |name: &str| cat.table("lineitem").schema.col(name);
        // Q1's scanned attributes: the shipdate filter and the two
        // dictionary-coded group keys pack; the float measures do not.
        assert!(result.spec.has_encoded_column("lineitem", li("l_shipdate")));
        assert!(result.spec.has_encoded_column("lineitem", li("l_returnflag")));
        assert!(result.spec.has_encoded_column("lineitem", li("l_linestatus")));
        assert!(!result.spec.has_encoded_column("lineitem", li("l_extendedprice")));
        assert!(result.c_source.contains("encoded column scan"));

        // Q6 touches only lineitem; the shipdate filter packs, the float
        // measures (quantity, discount, extendedprice) never do.
        let q6 = legobase_queries::query(&cat, 6);
        let r6 = compile(&q6, &cat, &Settings::optimized());
        assert!(r6.spec.has_encoded_column("lineitem", li("l_shipdate")));
        assert!(!r6.spec.has_encoded_column("lineitem", li("l_quantity")));
        assert!(r6.spec.encoded_columns.iter().all(|p| p.table == "lineitem"));

        // The ablation leaves the decision record empty.
        let off = compile(&q, &cat, &Settings::optimized().with(|s| s.encoding = false));
        assert!(off.spec.encoded_columns.is_empty());
        assert!(!off.c_source.contains("encoded column scan"));
    }

    /// The Encode transformer prices each cleared column's scan side
    /// (PR 10): literal filters stay in the raw word domain, single-scan
    /// decoded predicates fuse into the filter, and repeated reads fall back
    /// to the memoized whole-column decode.
    #[test]
    fn unpack_strategies_price_the_scan_side() {
        use legobase_engine::UnpackStrategy;
        let cat = catalog();
        let li = |name: &str| cat.table("lineitem").schema.col(name);
        // Q6: the shipdate filter compares against literals only — raw word
        // compares, never decoded.
        let r6 = compile(&legobase_queries::query(&cat, 6), &cat, &Settings::optimized());
        assert_eq!(
            r6.spec.unpack_strategy("lineitem", li("l_shipdate")),
            Some(UnpackStrategy::WordCompare)
        );
        // Q1 groups on the dictionary-coded flags: repeated decoded reads.
        let r1 = compile(&legobase_queries::query(&cat, 1), &cat, &Settings::optimized());
        assert_eq!(
            r1.spec.unpack_strategy("lineitem", li("l_returnflag")),
            Some(UnpackStrategy::ScratchUnpack)
        );
        // Q12 compares shipdate/commitdate/receiptdate to each other inside
        // one lineitem scan: the unpack fuses into the filter.
        let r12 = compile(&legobase_queries::query(&cat, 12), &cat, &Settings::optimized());
        for col in ["l_shipdate", "l_commitdate", "l_receiptdate"] {
            assert_eq!(
                r12.spec.unpack_strategy("lineitem", li(col)),
                Some(UnpackStrategy::FusedUnpack),
                "{col}"
            );
        }
        assert!(r12.c_source.contains("fused-unpack"));
        // Q21 runs the receiptdate > commitdate filter across several
        // lineitem scans: one memoized decode shared by all of them instead
        // of re-unpacking the same packed words per scan.
        let r21 = compile(&legobase_queries::query(&cat, 21), &cat, &Settings::optimized());
        for col in ["l_receiptdate", "l_commitdate"] {
            assert_eq!(
                r21.spec.unpack_strategy("lineitem", li(col)),
                Some(UnpackStrategy::ScratchUnpack),
                "{col}"
            );
        }
    }

    #[test]
    fn q12_specialization_matches_paper_narrative() {
        let cat = catalog();
        let q = legobase_queries::query(&cat, 12);
        let result = compile(&q, &cat, &Settings::optimized());
        // Partitioning: the lineitem side of the join is partitioned on
        // l_orderkey (Section 3.2.1's Q12 walkthrough).
        assert!(result.spec.has_fk_partition("lineitem", 0), "{:?}", result.spec.fk_partitions);
        // Dictionaries on l_shipmode and o_orderpriority (Section 3.4).
        let li = cat.table("lineitem").schema.col("l_shipmode");
        let op = cat.table("orders").schema.col("o_orderpriority");
        assert!(result.spec.dict_kind("lineitem", li).is_some());
        assert!(result.spec.dict_kind("orders", op).is_some());
        // The receiptdate range is date-indexed.
        assert!(result
            .spec
            .has_date_index("lineitem", cat.table("lineitem").schema.col("l_receiptdate")));
    }

    #[test]
    fn trace_records_every_phase_and_shrinks_ir() {
        let cat = catalog();
        let q = legobase_queries::query(&cat, 3);
        let result = compile(&q, &cat, &Settings::optimized());
        assert!(result.trace.len() >= 8);
        assert_eq!(result.trace[0].name, "OperatorInlining");
        // Cleanup passes must not grow the program.
        for w in result.trace.windows(2) {
            if w[1].name == "ParamPromDCEAndPartiallyEvaluate" {
                assert!(w[1].size <= w[0].size, "cleanup grew the IR: {w:?}");
            }
        }
        assert_eq!(result.stages.len(), result.trace.len());
    }

    /// Fusion runs before date indexing; it must never merge a loop in a
    /// way that hides a date-index opportunity (the date rewrite matches a
    /// single-`If` body, which a fused body would not be).
    #[test]
    fn fusion_does_not_steal_date_indices() {
        let cat = catalog();
        let settings = Settings::optimized();
        for q in legobase_queries::all_queries(&cat) {
            let with_fusion = compile(&q, &cat, &settings);
            let mut p = Pipeline::new();
            p.add(crate::transform::SingletonHashMapToValue);
            p.add(crate::transform::Cleanup);
            p.add(crate::transform::PartitioningAndDateIndices);
            p.add(crate::transform::Cleanup);
            let without_fusion = p.run(&q, &cat, &settings);
            let count =
                |prog: &crate::ir::Program| prog.count(|s| matches!(s, Stmt::DateIndexLoop { .. }));
            assert_eq!(
                count(&with_fusion.program),
                count(&without_fusion.program),
                "{}: fusion changed the number of date-indexed loops",
                q.name
            );
        }
    }

    #[test]
    fn all_queries_compile_under_all_configs() {
        let cat = catalog();
        for q in legobase_queries::all_queries(&cat) {
            for cfg in legobase_engine::Config::ALL {
                let settings = cfg.settings();
                let result = compile(&q, &cat, &settings);
                assert!(!result.c_source.is_empty(), "{}: empty C for {cfg:?}", q.name);
                if settings.string_dict {
                    // No raw string op survives dictionary lowering in the IR.
                    let mut raw = 0;
                    result.program.walk(&mut |s| {
                        let mut count = |e: &crate::ir::Expr| {
                            e.visit(&mut |x| {
                                if matches!(x, crate::ir::Expr::StrOp(..)) {
                                    raw += 1;
                                }
                            });
                        };
                        if let Stmt::If { cond, .. } = s {
                            count(cond);
                        }
                    });
                    assert_eq!(raw, 0, "{}: raw string ops left under {cfg:?}", q.name);
                }
            }
        }
    }
}
