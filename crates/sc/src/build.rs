//! Operator inlining: translating a physical plan into the top-level IR.
//!
//! This is the first pipeline entry of Fig. 5b. The plan's operator tree is
//! inlined into data-centric loop nests over generic collections — exactly
//! the shape of Fig. 7c: scans become loops, selections become `if`s inside
//! their producer's loop, joins become a `MultiMap` build loop plus a probe
//! loop, aggregations become `getOrElseUpdate` maps. Pipeline breakers
//! (sorts, limits, stage boundaries) materialize into named buffers.

use crate::ir::{AggOp, BinOp, Expr, KeyMeta, Program, Stmt, StrFn, Ty};
use legobase_engine::expr::{AggKind, ArithOp, CmpOp, Expr as PExpr};
use legobase_engine::plan::{JoinKind, Plan, QueryPlan};
use legobase_storage::{Catalog, Schema, Type, Value};

/// One visible column of the operator currently being inlined.
#[derive(Clone, Debug)]
struct BindItem {
    name: String,
    expr: Expr,
    ty: Type,
    /// Base-table provenance, when the value is a raw field of a scanned
    /// relation (drives the partitioning/date-index/dictionary analyses).
    prov: Option<(String, String)>,
}

type Binding = Vec<BindItem>;

struct Builder<'a> {
    catalog: &'a Catalog,
    prog: Program,
    stage_schemas: std::collections::HashMap<String, Schema>,
    buffer_counter: usize,
}

/// Translates a query plan into the unoptimized, operator-inlined IR.
pub fn build_ir(query: &QueryPlan, catalog: &Catalog) -> Program {
    let (stage_schemas, _) = query.schemas(&|t: &str| catalog.table(t).schema.clone());
    let mut b = Builder {
        catalog,
        prog: Program { name: query.name.clone(), stmts: Vec::new(), next_sym: 0 },
        stage_schemas,
        buffer_counter: 0,
    };
    for (name, plan) in &query.stages {
        b.prog.stmts.push(Stmt::Comment(format!("stage #{name}")));
        let stmts = b.materialize_into(plan, &format!("#{name}"));
        b.prog.stmts.extend(stmts);
    }
    b.prog.stmts.push(Stmt::Comment("main query".to_string()));
    let root_binding_emit = |_: &mut Builder, binding: &Binding| {
        vec![Stmt::Emit { values: binding.iter().map(|i| i.expr.clone()).collect() }]
    };
    let stmts = b.produce(&query.root, &mut { root_binding_emit });
    b.prog.stmts.extend(stmts);
    b.prog
}

impl<'a> Builder<'a> {
    fn schema_of(&self, table: &str) -> Schema {
        if let Some(s) = self.stage_schemas.get(table) {
            s.clone()
        } else {
            self.catalog.table(table).schema.clone()
        }
    }

    /// Produces loop code for `plan`, calling `consume` at the innermost
    /// point with the operator's output binding.
    fn produce(
        &mut self,
        plan: &Plan,
        consume: &mut dyn FnMut(&mut Builder, &Binding) -> Vec<Stmt>,
    ) -> Vec<Stmt> {
        match plan {
            Plan::Scan { table } => {
                let row = self.prog.fresh();
                let schema = self.schema_of(table);
                let is_base = !table.starts_with('#');
                let binding: Binding = schema
                    .fields
                    .iter()
                    .map(|f| BindItem {
                        name: f.name.clone(),
                        expr: Expr::Field(row, f.name.clone()),
                        ty: f.ty,
                        prov: is_base.then(|| (table.clone(), f.name.clone())),
                    })
                    .collect();
                let body = consume(self, &binding);
                vec![Stmt::ScanLoop { row, table: table.clone(), body }]
            }
            Plan::Select { input, predicate } => self.produce(input, &mut |b, binding| {
                let cond = b.tr(predicate, binding);
                vec![Stmt::If { cond, then_b: consume(b, binding), else_b: vec![] }]
            }),
            Plan::Project { input, exprs } => self.produce(input, &mut |b, binding| {
                let mut stmts = Vec::new();
                let mut out = Vec::new();
                for (e, name) in exprs {
                    let ir = b.tr(e, binding);
                    // Column pass-through keeps provenance; computed columns
                    // are bound to fresh symbols (later cleaned by scalar
                    // replacement if trivial).
                    let (expr, prov) = match e {
                        PExpr::Col(i) => (ir, binding[*i].prov.clone()),
                        _ => {
                            let sym = b.prog.fresh();
                            let ty = e.ty(&schema_of_binding(binding));
                            stmts.push(Stmt::Let { sym, ty: ir_ty(ty), value: ir });
                            (Expr::sym(sym), None)
                        }
                    };
                    out.push(BindItem {
                        name: name.clone(),
                        expr,
                        ty: e.ty(&schema_of_binding(binding)),
                        prov,
                    });
                }
                stmts.extend(consume(b, &out));
                stmts
            }),
            Plan::HashJoin { left, right, left_keys, right_keys, kind, residual } => self
                .produce_join(
                    left,
                    right,
                    left_keys,
                    right_keys,
                    *kind,
                    residual.as_ref(),
                    consume,
                ),
            Plan::Agg { input, group_by, aggs } => self.produce_agg(input, group_by, aggs, consume),
            Plan::Sort { input, keys } => {
                let name = self.fresh_buffer();
                let mut stmts = self.materialize_into(input, &name);
                stmts.push(Stmt::SortEmitted {
                    keys: keys
                        .iter()
                        .map(|(c, o)| (*c, *o == legobase_engine::plan::SortOrder::Asc))
                        .collect(),
                });
                stmts.extend(self.scan_buffer(&name, input, consume));
                stmts
            }
            Plan::Limit { input, n } => {
                let name = self.fresh_buffer();
                let mut stmts = self.materialize_into(input, &name);
                stmts.push(Stmt::LimitEmitted { n: *n });
                stmts.extend(self.scan_buffer(&name, input, consume));
                stmts
            }
            Plan::Distinct { input } => {
                // Modeled as an aggregation on all columns with no aggregates.
                let schema = plan.schema(&|t: &str| self.schema_of(t));
                let map = self.prog.fresh();
                let mut stmts = vec![Stmt::AggMapNew {
                    sym: map,
                    key: KeyMeta::default(),
                    naggs: 0,
                    store: crate::ir::AggStoreKind::GenericHashMap,
                    hoisted: false,
                }];
                stmts.extend(self.produce(input, &mut |b, binding| {
                    let key = pack_key(binding.iter().map(|i| i.expr.clone()).collect());
                    let _ = b;
                    vec![Stmt::AggUpdate { map, key, updates: vec![] }]
                }));
                let key_sym = self.prog.fresh();
                let aggs_sym = self.prog.fresh();
                let binding: Binding = schema
                    .fields
                    .iter()
                    .map(|f| BindItem {
                        name: f.name.clone(),
                        expr: Expr::Field(key_sym, f.name.clone()),
                        ty: f.ty,
                        prov: None,
                    })
                    .collect();
                let body = consume(self, &binding);
                stmts.push(Stmt::AggForeach { map, key_sym, aggs_sym, body });
                stmts
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[allow(clippy::too_many_arguments)]
    fn produce_join(
        &mut self,
        left: &Plan,
        right: &Plan,
        left_keys: &[usize],
        right_keys: &[usize],
        kind: JoinKind,
        residual: Option<&PExpr>,
        consume: &mut dyn FnMut(&mut Builder, &Binding) -> Vec<Stmt>,
    ) -> Vec<Stmt> {
        // Inner joins build over the left input and stream the right one
        // (Fig. 7c). Left-preserving joins (semi/anti/outer) build over the
        // right input and stream the left one, so the preserved binding is
        // in scope where the consumer runs.
        let (build_plan, build_keys, stream_plan, stream_keys) = match kind {
            JoinKind::Inner => (left, left_keys, right, right_keys),
            _ => (right, right_keys, left, left_keys),
        };
        let map = self.prog.fresh();
        let mut stmts = Vec::new();
        let mut key_meta = KeyMeta::default();
        let mut build_binding_saved: Option<Binding> = None;

        let build = self.produce(build_plan, &mut |b, binding| {
            if build_binding_saved.is_none() {
                build_binding_saved = Some(binding.clone());
                // The partitioned-join rewrite replaces the stored records
                // with direct base-table rows (Fig. 10), which is only valid
                // when the build side *is* a (filtered) base-table binding.
                let pure_base = binding.iter().all(|i| {
                    i.prov.as_ref().is_some_and(|(t, c)| {
                        *c == i.name && Some(t) == binding[0].prov.as_ref().map(|(t0, _)| t0)
                    })
                });
                if pure_base && build_keys.len() == 1 {
                    if let Some((t, c)) = &binding[build_keys[0]].prov {
                        key_meta = KeyMeta { table: Some(t.clone()), column: Some(c.clone()) };
                    }
                }
            }
            let key = pack_key(build_keys.iter().map(|&k| binding[k].expr.clone()).collect());
            let rec = b.prog.fresh();
            vec![
                Stmt::Let {
                    sym: rec,
                    ty: Ty::Row("rec".into()),
                    value: Expr::Call(
                        "record".into(),
                        binding.iter().map(|i| i.expr.clone()).collect(),
                    ),
                },
                Stmt::MultiMapInsert { map, key: key.clone(), row: rec },
            ]
        });
        stmts.push(Stmt::MultiMapNew { sym: map, key: key_meta });
        stmts.extend(build);

        let build_binding = build_binding_saved.unwrap_or_default();
        let build_names: Vec<(String, Type)> =
            build_binding.iter().map(|i| (i.name.clone(), i.ty)).collect();

        // Stream phase.
        let probe = self.produce(stream_plan, &mut |b, sbinding| {
            let key = pack_key(stream_keys.iter().map(|&k| sbinding[k].expr.clone()).collect());
            let mrow = b.prog.fresh();
            // Fields of the matched (build-side) record.
            let matched: Binding = build_names
                .iter()
                .map(|(n, ty)| BindItem {
                    name: n.clone(),
                    expr: Expr::Field(mrow, n.clone()),
                    ty: *ty,
                    prov: None,
                })
                .collect();
            // The plan-level joined schema is always left ++ right.
            let joined: Binding = match kind {
                JoinKind::Inner => {
                    matched.iter().cloned().chain(sbinding.iter().cloned()).collect()
                }
                _ => sbinding.iter().cloned().chain(matched.iter().cloned()).collect(),
            };
            let residual_cond = residual.map(|r| b.tr(r, &joined));
            match kind {
                JoinKind::Inner => {
                    let mut body = consume(b, &joined);
                    if let Some(cond) = residual_cond {
                        body = vec![Stmt::If { cond, then_b: body, else_b: vec![] }];
                    }
                    vec![Stmt::MultiMapLookup { map, key, row: mrow, body }]
                }
                JoinKind::Semi | JoinKind::Anti => {
                    // Existence probe with a flag; the output binding is the
                    // preserved (streamed) side only.
                    let found = b.prog.fresh();
                    let mut inner = vec![Stmt::Assign { sym: found, value: Expr::Bool(true) }];
                    if let Some(cond) = residual_cond {
                        inner = vec![Stmt::If { cond, then_b: inner, else_b: vec![] }];
                    }
                    let emit = consume(b, sbinding);
                    let cond = if kind == JoinKind::Semi {
                        Expr::sym(found)
                    } else {
                        Expr::Not(Box::new(Expr::sym(found)))
                    };
                    vec![
                        Stmt::Var { sym: found, ty: Ty::Bool, init: Expr::Bool(false) },
                        Stmt::MultiMapLookup { map, key, row: mrow, body: inner },
                        Stmt::If { cond, then_b: emit, else_b: vec![] },
                    ]
                }
                JoinKind::LeftOuter => {
                    // Emit per match inside the loop; emit once with NULL
                    // right attributes when no match was found.
                    let found = b.prog.fresh();
                    let mut inner = vec![Stmt::Assign { sym: found, value: Expr::Bool(true) }];
                    inner.extend(consume(b, &joined));
                    if let Some(cond) = residual_cond {
                        inner = vec![Stmt::If { cond, then_b: inner, else_b: vec![] }];
                    }
                    let null_joined: Binding = sbinding
                        .iter()
                        .cloned()
                        .chain(build_names.iter().map(|(n, ty)| BindItem {
                            name: n.clone(),
                            expr: Expr::Call("null".into(), vec![]),
                            ty: *ty,
                            prov: None,
                        }))
                        .collect();
                    let emit_null = consume(b, &null_joined);
                    vec![
                        Stmt::Var { sym: found, ty: Ty::Bool, init: Expr::Bool(false) },
                        Stmt::MultiMapLookup { map, key, row: mrow, body: inner },
                        Stmt::If {
                            cond: Expr::Not(Box::new(Expr::sym(found))),
                            then_b: emit_null,
                            else_b: vec![],
                        },
                    ]
                }
            }
        });
        stmts.extend(probe);
        stmts
    }

    fn produce_agg(
        &mut self,
        input: &Plan,
        group_by: &[usize],
        aggs: &[legobase_engine::plan::AggSpec],
        consume: &mut dyn FnMut(&mut Builder, &Binding) -> Vec<Stmt>,
    ) -> Vec<Stmt> {
        let map = self.prog.fresh();
        let mut key_meta = KeyMeta::default();
        let mut naggs = 0usize;
        let mut agg_items: Vec<(String, Type)> = Vec::new();
        let mut group_items: Vec<(String, Type)> = Vec::new();
        for a in aggs {
            let ty = match a.kind {
                AggKind::Count => Type::Int,
                AggKind::Avg => Type::Float,
                _ => Type::Float,
            };
            agg_items.push((a.name.clone(), ty));
        }

        let update_code = self.produce(input, &mut |b, binding| {
            if group_items.is_empty() {
                for &g in group_by {
                    group_items.push((binding[g].name.clone(), binding[g].ty));
                }
                if group_by.len() == 1 {
                    if let Some((t, c)) = &binding[group_by[0]].prov {
                        key_meta = KeyMeta { table: Some(t.clone()), column: Some(c.clone()) };
                    }
                }
            }
            let key = pack_key(group_by.iter().map(|&g| binding[g].expr.clone()).collect());
            let mut updates = Vec::new();
            for a in aggs {
                let e = b.tr(&a.expr, binding);
                match a.kind {
                    AggKind::Sum => {
                        let sch = schema_of_binding(binding);
                        let op =
                            if a.expr.ty(&sch) == Type::Int { AggOp::SumI } else { AggOp::SumF };
                        updates.push((op, e));
                    }
                    AggKind::Count => updates.push((AggOp::Count, e)),
                    AggKind::Avg => {
                        updates.push((AggOp::SumF, e));
                        updates.push((AggOp::Count, Expr::Int(1)));
                    }
                    AggKind::Min => updates.push((AggOp::Min, e)),
                    AggKind::Max => updates.push((AggOp::Max, e)),
                }
            }
            naggs = updates.len();
            vec![Stmt::AggUpdate { map, key, updates }]
        });

        let mut stmts = vec![Stmt::AggMapNew {
            sym: map,
            key: key_meta,
            naggs,
            store: crate::ir::AggStoreKind::GenericHashMap,
            hoisted: false,
        }];
        stmts.extend(update_code);

        let key_sym = self.prog.fresh();
        let aggs_sym = self.prog.fresh();
        let binding: Binding = group_items
            .iter()
            .map(|(n, ty)| BindItem {
                name: n.clone(),
                expr: Expr::Field(key_sym, n.clone()),
                ty: *ty,
                prov: None,
            })
            .chain(agg_items.iter().map(|(n, ty)| BindItem {
                name: n.clone(),
                expr: Expr::Field(aggs_sym, n.clone()),
                ty: *ty,
                prov: None,
            }))
            .collect();
        let body = consume(self, &binding);
        stmts.push(Stmt::AggForeach { map, key_sym, aggs_sym, body });
        stmts
    }

    /// Runs `plan` with an `Emit` consumer targeting buffer `name`.
    fn materialize_into(&mut self, plan: &Plan, name: &str) -> Vec<Stmt> {
        let mut stmts = vec![Stmt::Comment(format!("materialize into {name}"))];
        let inner = self.produce(plan, &mut |_, binding| {
            vec![Stmt::Emit { values: binding.iter().map(|i| i.expr.clone()).collect() }]
        });
        stmts.extend(inner);
        stmts
    }

    /// Scans a materialized buffer with the schema of `source`.
    fn scan_buffer(
        &mut self,
        name: &str,
        source: &Plan,
        consume: &mut dyn FnMut(&mut Builder, &Binding) -> Vec<Stmt>,
    ) -> Vec<Stmt> {
        let schema = source.schema(&|t: &str| self.schema_of(t));
        let row = self.prog.fresh();
        let binding: Binding = schema
            .fields
            .iter()
            .map(|f| BindItem {
                name: f.name.clone(),
                expr: Expr::Field(row, f.name.clone()),
                ty: f.ty,
                prov: None,
            })
            .collect();
        let body = consume(self, &binding);
        vec![Stmt::ScanLoop { row, table: name.to_string(), body }]
    }

    fn fresh_buffer(&mut self) -> String {
        self.buffer_counter += 1;
        format!("__buf{}", self.buffer_counter)
    }

    /// Translates a plan expression against the current binding.
    fn tr(&mut self, e: &PExpr, binding: &Binding) -> Expr {
        match e {
            PExpr::Col(i) => binding[*i].expr.clone(),
            PExpr::Lit(v) => lit(v),
            PExpr::Cmp(op, a, b) => {
                // String comparisons against literals stay string ops until
                // the dictionary transformer lowers them (Table II).
                if let PExpr::Lit(Value::Str(s)) = b.as_ref() {
                    let fa = self.tr(a, binding);
                    let f = match op {
                        CmpOp::Eq => Some(StrFn::Eq),
                        CmpOp::Ne => Some(StrFn::Ne),
                        _ => None,
                    };
                    if let Some(f) = f {
                        return Expr::StrOp(f, Box::new(fa), s.clone());
                    }
                    return Expr::Call(
                        format!("strcmp_{op:?}").to_lowercase(),
                        vec![fa, Expr::Str(s.clone())],
                    );
                }
                let (fa, fb) = (self.tr(a, binding), self.tr(b, binding));
                Expr::bin(cmp_op(*op), fa, fb)
            }
            PExpr::Arith(op, a, b) => {
                let ir = match op {
                    ArithOp::Add => BinOp::Add,
                    ArithOp::Sub => BinOp::Sub,
                    ArithOp::Mul => BinOp::Mul,
                    ArithOp::Div => BinOp::Div,
                };
                Expr::bin(ir, self.tr(a, binding), self.tr(b, binding))
            }
            PExpr::And(a, b) => Expr::bin(BinOp::And, self.tr(a, binding), self.tr(b, binding)),
            PExpr::Or(a, b) => Expr::bin(BinOp::Or, self.tr(a, binding), self.tr(b, binding)),
            PExpr::Not(a) => Expr::Not(Box::new(self.tr(a, binding))),
            PExpr::StartsWith(a, p) => {
                Expr::StrOp(StrFn::StartsWith, Box::new(self.tr(a, binding)), p.clone())
            }
            PExpr::EndsWith(a, p) => {
                Expr::StrOp(StrFn::EndsWith, Box::new(self.tr(a, binding)), p.clone())
            }
            PExpr::Contains(a, p) => {
                Expr::StrOp(StrFn::Contains, Box::new(self.tr(a, binding)), p.clone())
            }
            PExpr::ContainsWordSeq(a, w1, w2) => {
                Expr::StrOp(StrFn::WordSeq, Box::new(self.tr(a, binding)), format!("{w1} {w2}"))
            }
            PExpr::Substr(a, s, l) => Expr::Call(
                "substr".into(),
                vec![self.tr(a, binding), Expr::Int(*s as i64), Expr::Int(*l as i64)],
            ),
            PExpr::InList(a, vals) => {
                let fa = self.tr(a, binding);
                let parts: Vec<Expr> = vals
                    .iter()
                    .map(|v| match v {
                        Value::Str(s) => Expr::StrOp(StrFn::Eq, Box::new(fa.clone()), s.clone()),
                        other => Expr::bin(BinOp::Eq, fa.clone(), lit(other)),
                    })
                    .collect();
                parts
                    .into_iter()
                    .reduce(|a, b| Expr::bin(BinOp::Or, a, b))
                    .unwrap_or(Expr::Bool(false))
            }
            PExpr::Case(c, t, f) => Expr::Call(
                "ternary".into(),
                vec![self.tr(c, binding), self.tr(t, binding), self.tr(f, binding)],
            ),
            PExpr::IsNull(a) => Expr::Call("is_null".into(), vec![self.tr(a, binding)]),
            PExpr::Year(a) => Expr::YearOf(Box::new(self.tr(a, binding))),
        }
    }
}

fn cmp_op(op: CmpOp) -> BinOp {
    match op {
        CmpOp::Eq => BinOp::Eq,
        CmpOp::Ne => BinOp::Ne,
        CmpOp::Lt => BinOp::Lt,
        CmpOp::Le => BinOp::Le,
        CmpOp::Gt => BinOp::Gt,
        CmpOp::Ge => BinOp::Ge,
    }
}

fn lit(v: &Value) -> Expr {
    match v {
        Value::Int(i) => Expr::Int(*i),
        Value::Float(f) => Expr::Float(*f),
        Value::Str(s) => Expr::Str(s.clone()),
        Value::Date(d) => Expr::Date(d.0),
        Value::Bool(b) => Expr::Bool(*b),
        Value::Null => Expr::Call("null".into(), vec![]),
    }
}

fn ir_ty(t: Type) -> Ty {
    match t {
        Type::Int => Ty::I64,
        Type::Float => Ty::F64,
        Type::Str => Ty::Str,
        Type::Date => Ty::Date,
        Type::Bool => Ty::Bool,
    }
}

/// Reconstructs a schema view of a binding (for plan-expression typing).
fn schema_of_binding(binding: &Binding) -> Schema {
    Schema::new(binding.iter().map(|i| legobase_storage::Field::new(&i.name, i.ty)).collect())
}

/// Packs one or more key expressions into a single key expression.
fn pack_key(mut keys: Vec<Expr>) -> Expr {
    match keys.len() {
        0 => Expr::Int(0),
        1 => keys.pop().expect("non-empty"),
        _ => Expr::Call("pack".into(), keys),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legobase_queries::query;

    #[test]
    fn q6_builds_single_scan_with_global_agg() {
        let cat = legobase_tpch::catalog();
        let prog = build_ir(&query(&cat, 6), &cat);
        assert_eq!(prog.count(|s| matches!(s, Stmt::ScanLoop { .. })), 1);
        assert_eq!(prog.count(|s| matches!(s, Stmt::AggMapNew { .. })), 1);
        assert_eq!(prog.count(|s| matches!(s, Stmt::AggUpdate { .. })), 1);
        // No joins in Q6.
        assert_eq!(prog.count(|s| matches!(s, Stmt::MultiMapNew { .. })), 0);
    }

    #[test]
    fn q12_has_join_and_string_ops() {
        let cat = legobase_tpch::catalog();
        let prog = build_ir(&query(&cat, 12), &cat);
        assert_eq!(prog.count(|s| matches!(s, Stmt::MultiMapNew { .. })), 1);
        // The group key (l_shipmode) has provenance.
        let mut meta = None;
        prog.walk(&mut |s| {
            if let Stmt::AggMapNew { key, .. } = s {
                meta = Some(key.clone());
            }
        });
        let meta = meta.expect("agg map present");
        assert_eq!(meta.table.as_deref(), Some("lineitem"));
        assert_eq!(meta.column.as_deref(), Some("l_shipmode"));
        // String operations still in raw form before dictionary lowering.
        let mut str_ops = 0;
        prog.walk(&mut |s| {
            let count_in = |e: &Expr, n: &mut usize| {
                e.visit(&mut |x| {
                    if matches!(x, Expr::StrOp(..)) {
                        *n += 1;
                    }
                });
            };
            if let Stmt::If { cond, .. } = s {
                count_in(cond, &mut str_ops);
            }
        });
        assert!(str_ops > 0, "Q12 must contain string predicates");
    }

    #[test]
    fn all_queries_translate() {
        let cat = legobase_tpch::catalog();
        for q in legobase_queries::all_queries(&cat) {
            let prog = build_ir(&q, &cat);
            assert!(prog.size() > 3, "{} produced a trivial program", q.name);
            assert!(
                prog.count(|s| matches!(s, Stmt::Emit { .. })) >= 1,
                "{} emits nothing",
                q.name
            );
        }
    }

    #[test]
    fn join_provenance_recorded() {
        let cat = legobase_tpch::catalog();
        // Q4: orders semi-join lineitem on orderkey. Semi joins build over
        // the right (filtered lineitem) side, so the build key is
        // l_orderkey of lineitem.
        let prog = build_ir(&query(&cat, 4), &cat);
        let mut metas = Vec::new();
        prog.walk(&mut |s| {
            if let Stmt::MultiMapNew { key, .. } = s {
                metas.push(key.clone());
            }
        });
        assert_eq!(metas.len(), 1);
        assert_eq!(metas[0].table.as_deref(), Some("lineitem"));
        assert_eq!(metas[0].column.as_deref(), Some("l_orderkey"));
    }
}
