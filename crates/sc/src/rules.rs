//! The transformer framework: SC's `analysis += rule` / `rewrite += rule`
//! API (Fig. 5a), in Rust.
//!
//! A [`Transformer`] is a black box over [`Program`]s (Section 2.2: "SC
//! transformers act as black boxes, which can be plugged in at any stage in
//! the pipeline"). Rules are closures pattern-matching on IR nodes; the
//! framework owns the traversal so optimization authors never touch
//! scheduling or code-generation internals.

use crate::ir::{Expr, Program, Stmt};
use legobase_engine::{Settings, Specialization};
use legobase_storage::Catalog;

/// Shared compilation context: schema annotations in, specialization
/// decisions out.
pub struct TransformCtx<'a> {
    /// Schema catalog (annotations in).
    pub catalog: &'a Catalog,
    /// The optimization flag set being compiled under.
    pub settings: &'a Settings,
    /// The physical plan being compiled (plan-level analyses read it; the
    /// paper's transformers read the same information from operator objects
    /// still present at the higher IR levels).
    pub query: &'a legobase_engine::QueryPlan,
    /// Decision record consumed by the loader/executor.
    pub spec: Specialization,
}

/// A pipeline stage.
pub trait Transformer {
    /// Display name, shown in the pipeline trace.
    fn name(&self) -> &'static str;
    /// Transforms the program, optionally recording decisions in `ctx.spec`.
    fn run(&self, prog: Program, ctx: &mut TransformCtx<'_>) -> Program;
}

/// Applies a statement rewriter bottom-up over the whole program. The rule
/// returns `Some(replacement)` to rewrite a statement (possibly to several
/// statements, possibly to none) or `None` to keep it.
pub fn rewrite_stmts(prog: Program, rule: &impl Fn(&Stmt) -> Option<Vec<Stmt>>) -> Program {
    fn rec(stmts: &[Stmt], rule: &impl Fn(&Stmt) -> Option<Vec<Stmt>>) -> Vec<Stmt> {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            let rebuilt = s.map_bodies(&|b| rec(b, rule));
            match rule(&rebuilt) {
                Some(replacement) => out.extend(replacement),
                None => out.push(rebuilt),
            }
        }
        out
    }
    Program { stmts: rec(&prog.stmts, rule), ..prog }
}

/// Applies an expression rewriter to every expression in the program
/// (bottom-up within each expression).
pub fn rewrite_exprs(prog: Program, rule: &impl Fn(&Expr) -> Option<Expr>) -> Program {
    rewrite_stmts(prog, &|s| Some(vec![s.map_exprs(rule)]))
}

/// Runs an analysis visitor over every statement.
pub fn analyze(prog: &Program, mut visit: impl FnMut(&Stmt)) {
    prog.walk(&mut visit);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Sym, Ty};

    fn prog() -> Program {
        Program {
            name: "t".into(),
            next_sym: 3,
            stmts: vec![
                Stmt::Var { sym: Sym(0), ty: Ty::I64, init: Expr::Int(0) },
                Stmt::ScanLoop {
                    row: Sym(1),
                    table: "r".into(),
                    body: vec![Stmt::If {
                        cond: Expr::Bool(true),
                        then_b: vec![Stmt::Assign {
                            sym: Sym(0),
                            value: Expr::bin(BinOp::Add, Expr::sym(Sym(0)), Expr::Int(1)),
                        }],
                        else_b: vec![],
                    }],
                },
            ],
        }
    }

    #[test]
    fn stmt_rewriter_reaches_nested_bodies() {
        // Drop every Assign, wherever it is.
        let out = rewrite_stmts(prog(), &|s| match s {
            Stmt::Assign { .. } => Some(vec![]),
            _ => None,
        });
        assert_eq!(out.count(|s| matches!(s, Stmt::Assign { .. })), 0);
        assert_eq!(out.count(|s| matches!(s, Stmt::ScanLoop { .. })), 1);
    }

    #[test]
    fn stmt_rewriter_can_expand() {
        let out = rewrite_stmts(prog(), &|s| match s {
            Stmt::Var { sym, ty, init } => Some(vec![
                Stmt::Comment("hoisted".into()),
                Stmt::Var { sym: *sym, ty: ty.clone(), init: init.clone() },
            ]),
            _ => None,
        });
        assert_eq!(out.count(|s| matches!(s, Stmt::Comment(_))), 1);
        assert_eq!(out.stmts.len(), 3);
    }

    #[test]
    fn expr_rewriter_reaches_nested_exprs() {
        let out = rewrite_exprs(prog(), &|e| match e {
            Expr::Int(1) => Some(Expr::Int(42)),
            _ => None,
        });
        let mut found = false;
        out.walk(&mut |s| {
            if let Stmt::Assign { value, .. } = s {
                value.visit(&mut |e| {
                    if *e == Expr::Int(42) {
                        found = true;
                    }
                });
            }
        });
        assert!(found);
    }

    #[test]
    fn analyze_visits_all() {
        let mut n = 0;
        analyze(&prog(), |_| n += 1);
        assert_eq!(n, prog().size());
    }
}
