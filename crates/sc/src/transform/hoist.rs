//! HashMapHoisting + MallocHoisting (Section 3.5): allocations and
//! data-structure initialization move off the critical path into load
//! time.
use crate::ir::*;
use crate::rules::{rewrite_exprs, rewrite_stmts, TransformCtx, Transformer};

// --------------------------------------------------------------------------
// HashMapHoisting + MallocHoisting (Section 3.5)
// --------------------------------------------------------------------------

/// HashMapHoisting + MallocHoisting (Section 3.5): marks stores as
/// pool-backed and pre-initialized so allocation and initialization leave
/// the critical path.
pub struct CodeMotionHoisting;

impl Transformer for CodeMotionHoisting {
    fn name(&self) -> &'static str {
        "HashMapHoisting+MallocHoisting"
    }

    fn run(&self, prog: Program, _ctx: &mut TransformCtx<'_>) -> Program {
        // Mark every remaining store as hoisted (pool pre-allocated at load
        // time, sized by worst-case analysis) and upgrade dense aggregation
        // stores to direct arrays with hoisted initialization.
        let prog = rewrite_stmts(prog, &|s| match s {
            Stmt::AggMapNew { sym, key, naggs, store, hoisted: false } => {
                let store = match store {
                    // A single provenance-tracked key can be pre-initialized
                    // over its domain (Section 3.5.2).
                    AggStoreKind::LoweredArray if key.table.is_some() => AggStoreKind::DirectArray,
                    other => *other,
                };
                Some(vec![Stmt::AggMapNew {
                    sym: *sym,
                    key: key.clone(),
                    naggs: *naggs,
                    store,
                    hoisted: true,
                }])
            }
            Stmt::BucketArrayNew { sym, entry, size_hint: _, hoisted: false } => {
                Some(vec![Stmt::BucketArrayNew {
                    sym: *sym,
                    entry: entry.clone(),
                    size_hint: SizeHint::Rows(0), // sized from statistics at load
                    hoisted: true,
                }])
            }
            _ => None,
        });
        // Malloc hoisting: record construction inside loops draws from the
        // pre-allocated pool instead of malloc.
        rewrite_exprs(prog, &|e| match e {
            Expr::Call(name, args) if name == "record" => {
                Some(Expr::Call("pool_record".into(), args.clone()))
            }
            _ => None,
        })
    }
}
