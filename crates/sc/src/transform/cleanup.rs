//! ParamPromDCEAndPartiallyEvaluate — the cleanup pass re-run after every
//! domain-specific phase (Fig. 5b): partial evaluation, CSE, scalar
//! replacement (parameter promotion), and dead code elimination
//! (Sections 3.6.2–3.6.3).
use crate::ir::*;
use crate::rules::{rewrite_exprs, rewrite_stmts, TransformCtx, Transformer};
use legobase_storage::Date;
use std::collections::HashMap;

// --------------------------------------------------------------------------
// ParamPromDCEAndPartiallyEvaluate — the cleanup pass re-run after every
// domain-specific phase (Fig. 5b).
// --------------------------------------------------------------------------

/// Partial evaluation + scalar replacement (parameter promotion) + dead code
/// elimination (Sections 3.6.2–3.6.3).
pub struct Cleanup;

impl Transformer for Cleanup {
    fn name(&self) -> &'static str {
        "ParamPromDCEAndPartiallyEvaluate"
    }

    fn run(&self, mut prog: Program, _ctx: &mut TransformCtx<'_>) -> Program {
        for _ in 0..4 {
            let before = prog.size();
            prog = constant_fold(prog);
            prog = common_subexpression_eliminate(prog);
            prog = scalar_replace(prog);
            prog = dead_code_eliminate(prog);
            if prog.size() == before {
                break;
            }
        }
        prog
    }
}

/// Common subexpression elimination: the paper's motivating example shares
/// `1 - S.B` between aggregation expressions once the whole engine is
/// compiled together (Fig. 2). Within each block (and its nested bodies,
/// which inherit the available expressions), a pure non-trivial expression
/// bound by a `Let` replaces later occurrences of the same expression.
/// Mutation of any symbol an expression reads invalidates its cache entry.
pub fn common_subexpression_eliminate(mut prog: Program) -> Program {
    prog.stmts = cse_block(&prog.stmts, &mut Vec::new());
    prog
}

/// True for expressions worth caching: pure, non-leaf, and loop-free cost.
fn cse_candidate(e: &Expr) -> bool {
    e.is_pure() && matches!(e, Expr::Bin(..) | Expr::Not(_) | Expr::YearOf(_)) && {
        let mut syms = Vec::new();
        e.syms(&mut syms);
        !syms.is_empty() // constant expressions are the folder's job
    }
}

fn cse_block(stmts: &[Stmt], available: &mut Vec<(Expr, Sym)>) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        // Substitute already-available expressions in this statement.
        let avail = available.clone();
        let s = s.map_exprs(&|e| {
            avail.iter().find(|(cached, _)| cached == e).map(|(_, sym)| Expr::Sym(*sym))
        });
        // Recurse into bodies with an inherited (branch-local) table.
        let s = s.map_bodies(&|b| cse_block(b, &mut available.clone()));
        // Record new definitions / invalidate on mutation.
        match &s {
            Stmt::Let { sym, value, .. } if cse_candidate(value) => {
                available.push((value.clone(), *sym));
            }
            Stmt::Assign { sym, .. } | Stmt::Var { sym, .. } => {
                // Any cached expression reading the mutated symbol is stale.
                let dead = *sym;
                available.retain(|(e, s2)| {
                    let mut syms = Vec::new();
                    e.syms(&mut syms);
                    !syms.contains(&dead) && *s2 != dead
                });
            }
            _ => {}
        }
        out.push(s);
    }
    out
}

/// Folds constant sub-expressions (partial evaluation).
pub fn constant_fold(prog: Program) -> Program {
    let prog = rewrite_exprs(prog, &fold_expr);
    // If-with-constant-condition simplification.
    rewrite_stmts(prog, &|s| match s {
        Stmt::If { cond: Expr::Bool(true), then_b, .. } => Some(then_b.clone()),
        Stmt::If { cond: Expr::Bool(false), else_b, .. } => Some(else_b.clone()),
        Stmt::If { cond, then_b, else_b }
            if then_b.is_empty() && else_b.is_empty() && cond.is_pure() =>
        {
            Some(vec![])
        }
        _ => None,
    })
}

fn fold_expr(e: &Expr) -> Option<Expr> {
    use BinOp::*;
    match e {
        Expr::Bin(op, a, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Int(x), Expr::Int(y)) => Some(match op {
                Add => Expr::Int(x + y),
                Sub => Expr::Int(x - y),
                Mul => Expr::Int(x * y),
                Div if *y != 0 => Expr::Int(x / y),
                Div => return None,
                Eq => Expr::Bool(x == y),
                Ne => Expr::Bool(x != y),
                Lt => Expr::Bool(x < y),
                Le => Expr::Bool(x <= y),
                Gt => Expr::Bool(x > y),
                Ge => Expr::Bool(x >= y),
                And | Or | BitAnd => return None,
            }),
            (Expr::Float(x), Expr::Float(y)) => Some(match op {
                Add => Expr::Float(x + y),
                Sub => Expr::Float(x - y),
                Mul => Expr::Float(x * y),
                Div => Expr::Float(x / y),
                Eq => Expr::Bool(x == y),
                Ne => Expr::Bool(x != y),
                Lt => Expr::Bool(x < y),
                Le => Expr::Bool(x <= y),
                Gt => Expr::Bool(x > y),
                Ge => Expr::Bool(x >= y),
                And | Or | BitAnd => return None,
            }),
            // Boolean identities only apply to boolean-typed operands: the
            // evaluator coerces non-boolean operands of And/Or by truthiness,
            // so `x && true → x` would change the result type otherwise.
            (Expr::Bool(x), rhs) if *op == And && produces_bool(rhs) => {
                Some(if *x { rhs.clone() } else { Expr::Bool(false) })
            }
            (lhs, Expr::Bool(y)) if *op == And && produces_bool(lhs) => {
                Some(if *y { lhs.clone() } else { Expr::Bool(false) })
            }
            (Expr::Bool(x), rhs) if *op == Or && produces_bool(rhs) => {
                Some(if *x { Expr::Bool(true) } else { rhs.clone() })
            }
            (lhs, Expr::Bool(y)) if *op == Or && produces_bool(lhs) => {
                Some(if *y { Expr::Bool(true) } else { lhs.clone() })
            }
            _ => None,
        },
        Expr::Not(a) => match a.as_ref() {
            Expr::Bool(b) => Some(Expr::Bool(!b)),
            Expr::Not(inner) => Some(inner.as_ref().clone()),
            _ => None,
        },
        Expr::YearOf(a) => match a.as_ref() {
            Expr::Date(d) => Some(Expr::Int(Date(*d).year() as i64)),
            _ => None,
        },
        _ => None,
    }
}

/// True when an expression statically produces a boolean.
fn produces_bool(e: &Expr) -> bool {
    match e {
        Expr::Bool(_) | Expr::Not(_) | Expr::StrOp(..) | Expr::DictOp { .. } => true,
        Expr::Bin(op, _, _) => {
            op.is_comparison() || matches!(op, BinOp::And | BinOp::Or | BinOp::BitAnd)
        }
        _ => false,
    }
}

/// Scalar replacement: `val x = <trivial>` is substituted into its uses.
pub fn scalar_replace(prog: Program) -> Program {
    let mut subst: HashMap<Sym, Expr> = HashMap::new();
    prog.walk(&mut |s| {
        if let Stmt::Let { sym, value, .. } = s {
            let trivial = matches!(
                value,
                Expr::Sym(_)
                    | Expr::Int(_)
                    | Expr::Float(_)
                    | Expr::Bool(_)
                    | Expr::Date(_)
                    | Expr::Field(..)
            );
            if trivial {
                subst.insert(*sym, value.clone());
            }
        }
    });
    if subst.is_empty() {
        return prog;
    }
    // Resolve chains (x = y; z = x).
    let resolve = |mut e: Expr| {
        for _ in 0..subst.len() + 1 {
            let next = e.rewrite(&|x| match x {
                Expr::Sym(s) => subst.get(s).cloned(),
                _ => None,
            });
            if next == e {
                break;
            }
            e = next;
        }
        e
    };
    let prog = rewrite_exprs(prog, &|e| match e {
        Expr::Sym(s) if subst.contains_key(s) => Some(resolve(e.clone())),
        _ => None,
    });
    // Drop the now-dead trivial lets (DCE would too, but do it eagerly).
    rewrite_stmts(prog, &|s| match s {
        Stmt::Let { sym, .. } if subst.contains_key(sym) => Some(vec![]),
        _ => None,
    })
}

/// Removes pure definitions whose symbol is never used, empty loops, and
/// unused collections.
pub fn dead_code_eliminate(mut prog: Program) -> Program {
    for _ in 0..4 {
        let mut used: Vec<Sym> = Vec::new();
        let mut maps_used: Vec<Sym> = Vec::new();
        prog.walk(&mut |s| {
            match s {
                Stmt::Let { value, .. } | Stmt::Var { init: value, .. } => value.syms(&mut used),
                Stmt::Assign { sym, value } => {
                    // An assignment keeps its own target alive only if the
                    // target is read elsewhere; record only the value syms.
                    value.syms(&mut used);
                    let _ = sym;
                }
                Stmt::If { cond, .. } => cond.syms(&mut used),
                Stmt::MultiMapInsert { map, key, row } => {
                    maps_used.push(*map);
                    key.syms(&mut used);
                    used.push(*row);
                }
                Stmt::MultiMapLookup { map, key, .. } => {
                    maps_used.push(*map);
                    key.syms(&mut used);
                }
                Stmt::BucketArrayInsert { arr, key, row } => {
                    maps_used.push(*arr);
                    key.syms(&mut used);
                    used.push(*row);
                }
                Stmt::BucketArrayLookup { arr, key, .. } => {
                    maps_used.push(*arr);
                    key.syms(&mut used);
                }
                Stmt::AggUpdate { map, key, updates } => {
                    maps_used.push(*map);
                    key.syms(&mut used);
                    for (_, e) in updates {
                        e.syms(&mut used);
                    }
                }
                Stmt::AggForeach { map, .. } => maps_used.push(*map),
                Stmt::PartitionLookupLoop { key, .. } => key.syms(&mut used),
                Stmt::Emit { values } => {
                    for v in values {
                        v.syms(&mut used);
                    }
                }
                _ => {}
            }
        });
        let before = prog.size();
        prog = rewrite_stmts(prog, &|s| match s {
            Stmt::Let { sym, value, .. } if value.is_pure() && !used.contains(sym) => Some(vec![]),
            Stmt::Var { sym, init, .. } if init.is_pure() && !used.contains(sym) => Some(vec![]),
            Stmt::Assign { sym, value } if value.is_pure() && !used.contains(sym) => Some(vec![]),
            Stmt::MultiMapNew { sym, .. }
            | Stmt::AggMapNew { sym, .. }
            | Stmt::BucketArrayNew { sym, .. }
                if !maps_used.contains(sym) =>
            {
                Some(vec![])
            }
            Stmt::ScanLoop { body, .. }
            | Stmt::TiledScanLoop { body, .. }
            | Stmt::DateIndexLoop { body, .. }
                if body.is_empty() =>
            {
                Some(vec![])
            }
            _ => None,
        });
        if prog.size() == before {
            break;
        }
    }
    prog
}
