//! FieldPromotion — "Flattening Nested Structs" / parameter promotion on
//! records (Table IV; Section 3.6.2): repeatedly-read row fields become
//! locals loaded once per iteration.
use crate::ir::*;
use crate::rules::{TransformCtx, Transformer};
use legobase_storage::Type;
use std::collections::HashMap;

// --------------------------------------------------------------------------
// FieldPromotion — "Flattening Nested Structs" / parameter promotion on
// records (Table IV; Section 3.6.2)
// --------------------------------------------------------------------------

/// Promotes repeatedly-accessed row fields to local variables: a field of a
/// loop row that is read two or more times inside the loop body is loaded
/// once into a local at the top of the body, and every use refers to the
/// local. This is the record flavor of the paper's parameter promotion: the
/// struct access (one memory dereference per use) is flattened to a local
/// variable the C compiler can keep in a register.
pub struct FieldPromotion;

impl Transformer for FieldPromotion {
    fn name(&self) -> &'static str {
        "FieldPromotion"
    }

    fn run(&self, mut prog: Program, ctx: &mut TransformCtx<'_>) -> Program {
        let next = std::cell::Cell::new(prog.next_sym);
        let stmts = promote_block(&prog.stmts, ctx.catalog, &next);
        prog.stmts = stmts;
        prog.next_sym = next.get();
        prog
    }
}

fn promote_block(
    stmts: &[Stmt],
    catalog: &legobase_storage::Catalog,
    next: &std::cell::Cell<u32>,
) -> Vec<Stmt> {
    stmts
        .iter()
        .map(|s| {
            let s = s.map_bodies(&|b| promote_block(b, catalog, next));
            // Loops binding a base-table row are promotion sites.
            let (row, table) = match &s {
                Stmt::ScanLoop { row, table, .. }
                | Stmt::TiledScanLoop { row, table, .. }
                | Stmt::DateIndexLoop { row, table, .. }
                | Stmt::PartitionLookupLoop { row, table, .. } => (*row, table.clone()),
                _ => return s,
            };
            let Some(meta) = catalog.get(&table) else { return s };
            // Count field reads of this row in the whole body (both the
            // row-layout `Field` form and the columnar `ColumnLoad` form,
            // remembering which form the body uses so the hoisted load
            // keeps the same layout).
            let mut counts: HashMap<String, (usize, bool)> = HashMap::new();
            for b in s.bodies() {
                for st in b.iter() {
                    count_field_reads(st, row, &mut counts);
                }
            }
            let mut promoted: Vec<(String, Sym, bool)> = Vec::new();
            for (field, (n, columnar)) in &counts {
                if *n >= 2 && meta.schema.index_of(field).is_some() {
                    let sym = Sym(next.get());
                    next.set(next.get() + 1);
                    promoted.push((field.clone(), sym, *columnar));
                }
            }
            if promoted.is_empty() {
                return s;
            }
            promoted.sort(); // deterministic output order
            let renames: Vec<(String, Sym)> =
                promoted.iter().map(|(f, sym, _)| (f.clone(), *sym)).collect();
            s.map_bodies(&|b| {
                let mut out: Vec<Stmt> = Vec::with_capacity(b.len() + promoted.len());
                for (field, sym, columnar) in &promoted {
                    let i = meta.schema.index_of(field).expect("checked above");
                    let ty = match meta.schema.ty(i) {
                        Type::Int => crate::ir::Ty::I64,
                        Type::Float => crate::ir::Ty::F64,
                        // Columnar string vectors hold dictionary codes
                        // (integers) by this stage; row-layout strings stay
                        // pointers.
                        Type::Str if *columnar => crate::ir::Ty::I64,
                        Type::Str => crate::ir::Ty::Str,
                        Type::Date => crate::ir::Ty::Date,
                        Type::Bool => crate::ir::Ty::Bool,
                    };
                    let init = if *columnar {
                        Expr::ColumnLoad { table: table.clone(), column: field.clone(), idx: row }
                    } else {
                        Expr::Field(row, field.clone())
                    };
                    // `Var`, not `Let`: scalar replacement substitutes
                    // trivial `Let`s back into their uses, which would undo
                    // the promotion.
                    out.push(Stmt::Var { sym: *sym, ty, init });
                }
                for st in b {
                    out.push(replace_field_reads(st, row, &renames));
                }
                out
            })
        })
        .collect()
}

/// Visits every expression of a statement (not descending into bodies).
pub(crate) fn stmt_exprs(s: &Stmt, f: &mut impl FnMut(&Expr)) {
    match s {
        Stmt::Let { value, .. } | Stmt::Var { init: value, .. } | Stmt::Assign { value, .. } => {
            f(value)
        }
        Stmt::If { cond, .. } => f(cond),
        Stmt::MultiMapInsert { key, .. }
        | Stmt::MultiMapLookup { key, .. }
        | Stmt::PartitionLookupLoop { key, .. }
        | Stmt::BucketArrayInsert { key, .. }
        | Stmt::BucketArrayLookup { key, .. } => f(key),
        Stmt::AggUpdate { key, updates, .. } => {
            f(key);
            for (_, e) in updates {
                f(e);
            }
        }
        Stmt::Emit { values } => {
            for v in values {
                f(v);
            }
        }
        _ => {}
    }
}

fn count_field_reads(s: &Stmt, row: Sym, counts: &mut HashMap<String, (usize, bool)>) {
    stmt_exprs(s, &mut |e| {
        e.visit(&mut |x| match x {
            Expr::Field(r, f) if *r == row => counts.entry(f.clone()).or_default().0 += 1,
            Expr::ColumnLoad { column, idx, .. } if *idx == row => {
                let entry = counts.entry(column.clone()).or_default();
                entry.0 += 1;
                entry.1 = true;
            }
            _ => {}
        });
    });
    for b in s.bodies() {
        for st in b {
            count_field_reads(st, row, counts);
        }
    }
}

fn replace_field_reads(s: &Stmt, row: Sym, promoted: &[(String, Sym)]) -> Stmt {
    let s = s.map_bodies(&|b| b.iter().map(|st| replace_field_reads(st, row, promoted)).collect());
    s.map_exprs(&|e| {
        let field = match e {
            Expr::Field(r, f) if *r == row => f,
            Expr::ColumnLoad { idx, column, .. } if *idx == row => column,
            _ => return None,
        };
        promoted.iter().find(|(f, _)| f == field).map(|(_, sym)| Expr::Sym(*sym))
    })
}
