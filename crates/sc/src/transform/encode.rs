//! Encode (DESIGN.md §3e): clears the base-table columns a query touches
//! for packed storage — frame-of-reference bit-packed integers and dates,
//! and bit-packed dictionary codes.
//!
//! Like `Parallelize`, this transformer is a pure decision pass: it leaves
//! the IR untouched (the kernels already scan packed columns without
//! decompressing) and records which `(table, column)` pairs the loader
//! should re-encode after the partition/index/dictionary builds. Only
//! integer, date, and dictionary-coded string attributes are cleared —
//! floats, booleans, and raw strings always stay plain — and the loader's
//! profitability check ([`legobase_storage::Column::encode`]) may still
//! keep a cleared column plain when packing would not shrink it.
use super::plan_info::*;
use crate::ir::{Program, Stmt};
use crate::rules::{TransformCtx, Transformer};
use legobase_engine::expr::Expr as PExpr;
use legobase_engine::plan::Plan;
use legobase_engine::UnpackStrategy;
use legobase_storage::Type;
use std::collections::{HashMap, HashSet};

/// Clears touched Int/Date/dictionary base columns for packed storage.
pub struct Encode;

impl Transformer for Encode {
    fn name(&self) -> &'static str {
        "Encode"
    }

    fn run(&self, mut prog: Program, ctx: &mut TransformCtx<'_>) -> Program {
        // ---- analysis: every base (table, column) the query reads, via the
        // same plan-level provenance the other decision passes use — split
        // into the three usage classes that price the scan side of the
        // representation (PR 10, DESIGN.md §3e):
        //
        // * `lit` — literal comparisons in selection predicates: kernels
        //   compare pre-encoded raw offsets and never decode at all;
        // * `pred` — predicate uses that need decoded values (column-vs-
        //   column comparisons, arithmetic, string-flag lookups);
        // * `heavy` — everything outside selection predicates (projections,
        //   join keys and residuals, aggregates, group/sort keys): the
        //   decoded values are read repeatedly downstream.
        let mut lit: HashSet<(String, usize)> = HashSet::new();
        let mut pred: HashSet<(String, usize)> = HashSet::new();
        let mut heavy: HashSet<(String, usize)> = HashSet::new();
        let mut touched: Vec<(String, usize)> = Vec::new();
        let mut scans: HashMap<String, usize> = HashMap::new();
        walk_plans(ctx, |plan, resolve| match plan {
            Plan::Scan { table } if !table.starts_with('#') => {
                *scans.entry(table.clone()).or_insert(0) += 1;
            }
            Plan::Select { input, predicate } => {
                let p = resolve(input);
                collect_col_refs(predicate, &p, &mut touched);
                classify_pred(predicate, &p, &mut lit, &mut pred);
            }
            Plan::Project { input, exprs } => {
                let p = resolve(input);
                for (e, _) in exprs {
                    collect_col_refs(e, &p, &mut touched);
                    collect_into(e, &p, &mut heavy);
                }
            }
            Plan::HashJoin { left, right, left_keys, right_keys, residual, .. } => {
                let l = resolve(left);
                let r = resolve(right);
                for &k in left_keys {
                    push_prov(&l, k, &mut touched);
                    insert_prov(&l, k, &mut heavy);
                }
                for &k in right_keys {
                    push_prov(&r, k, &mut touched);
                    insert_prov(&r, k, &mut heavy);
                }
                if let Some(res) = residual {
                    let mut p = l;
                    p.extend(r);
                    collect_col_refs(res, &p, &mut touched);
                    collect_into(res, &p, &mut heavy);
                }
            }
            Plan::Agg { input, group_by, aggs } => {
                let p = resolve(input);
                for a in aggs {
                    collect_col_refs(&a.expr, &p, &mut touched);
                    collect_into(&a.expr, &p, &mut heavy);
                }
                for &g in group_by {
                    push_prov(&p, g, &mut touched);
                    insert_prov(&p, g, &mut heavy);
                }
            }
            Plan::Sort { input, keys } => {
                let p = resolve(input);
                for (k, _) in keys {
                    push_prov(&p, *k, &mut touched);
                    insert_prov(&p, *k, &mut heavy);
                }
            }
            _ => {}
        });

        // ---- decision: ints and dates pack directly; strings pack their
        // codes only when a dictionary decision exists (StringDictionary runs
        // earlier in the pipeline); everything else stays plain. Each cleared
        // column also gets the cheapest scan strategy that covers every one
        // of its uses (add_encoded_column_with downgrades toward safety when
        // a column shows up in several classes).
        for (t, c) in touched {
            let ty = ctx.catalog.table(&t).schema.ty(c);
            let encodable = matches!(ty, Type::Int | Type::Date)
                || (ty == Type::Str && ctx.spec.dict_kind(&t, c).is_some());
            if !encodable {
                continue;
            }
            let key = (t.clone(), c);
            let multi_scan = scans.get(&t).copied().unwrap_or(0) > 1;
            let strategy = if heavy.contains(&key) {
                UnpackStrategy::ScratchUnpack
            } else if pred.contains(&key) {
                // Decoded predicate values: dictionary-coded string tests
                // (ordering flags, LIKE, word sequences) index per-distinct
                // flags by the code — batch-unpacked per morsel in block
                // filters, a shift/mask per row elsewhere, never a string
                // decode — so they stay in the code domain. Int/date
                // predicates fuse the unpack into the filter on a singly
                // scanned table; a table scanned several times (Q21's
                // lineitem passes) keeps the column plain instead — see the
                // scratch-strategy pricing note below.
                if ty == Type::Str {
                    UnpackStrategy::WordCompare
                } else if multi_scan {
                    UnpackStrategy::ScratchUnpack
                } else {
                    UnpackStrategy::FusedUnpack
                }
            } else {
                UnpackStrategy::WordCompare
            };
            ctx.spec.add_encoded_column_with(&t, c, strategy);
        }

        let n = ctx.spec.encoded_columns.len();
        if n > 0 {
            // The banner lands in the generated C, like Parallelize's; the
            // per-strategy split documents the PR 10 scan pricing.
            let count = |s: UnpackStrategy| {
                ctx.spec
                    .encoded_columns
                    .iter()
                    .filter(|p| ctx.spec.unpack_strategy(&p.table, p.column) == Some(s))
                    .count()
            };
            prog.stmts.insert(
                0,
                Stmt::Comment(format!(
                    "encoded column scan: {n} column(s) cleared ({} word-compare, {} fused-unpack, {} scratch-unpack/plain)",
                    count(UnpackStrategy::WordCompare),
                    count(UnpackStrategy::FusedUnpack),
                    count(UnpackStrategy::ScratchUnpack),
                )),
            );
        }
        prog
    }
}

/// Classifies the column references of a selection predicate: literal
/// comparisons (and pre-encodable membership/equality tests) go to `lit`,
/// everything else that reads a column goes to `pred`.
fn classify_pred(
    e: &PExpr,
    prov: &Prov,
    lit: &mut HashSet<(String, usize)>,
    pred: &mut HashSet<(String, usize)>,
) {
    match e {
        PExpr::And(a, b) | PExpr::Or(a, b) => {
            classify_pred(a, prov, lit, pred);
            classify_pred(b, prov, lit, pred);
        }
        PExpr::Not(a) => classify_pred(a, prov, lit, pred),
        PExpr::Cmp(_, a, b) => match (a.as_ref(), b.as_ref()) {
            (PExpr::Col(i), PExpr::Lit(_)) | (PExpr::Lit(_), PExpr::Col(i)) => {
                insert_prov(prov, *i, lit)
            }
            _ => {
                collect_into(a, prov, pred);
                collect_into(b, prov, pred);
            }
        },
        // Membership over a bare column pre-encodes the list into the frame
        // of reference (integers) or dictionary codes — no decode.
        PExpr::InList(a, _) if matches!(a.as_ref(), PExpr::Col(_)) => collect_into(a, prov, lit),
        _ => collect_into(e, prov, pred),
    }
}

fn insert_prov(prov: &Prov, idx: usize, out: &mut HashSet<(String, usize)>) {
    if let Some(Some((t, c))) = prov.get(idx) {
        out.insert((t.clone(), *c));
    }
}

fn collect_into(e: &PExpr, prov: &Prov, out: &mut HashSet<(String, usize)>) {
    let mut v = Vec::new();
    collect_col_refs(e, prov, &mut v);
    out.extend(v);
}

fn push_prov(prov: &Prov, idx: usize, out: &mut Vec<(String, usize)>) {
    if let Some(Some((t, c))) = prov.get(idx) {
        out.push((t.clone(), *c));
    }
}

fn collect_col_refs(e: &PExpr, prov: &Prov, out: &mut Vec<(String, usize)>) {
    match e {
        PExpr::Col(i) => push_prov(prov, *i, out),
        PExpr::Lit(_) => {}
        PExpr::Cmp(_, a, b) | PExpr::Arith(_, a, b) | PExpr::And(a, b) | PExpr::Or(a, b) => {
            collect_col_refs(a, prov, out);
            collect_col_refs(b, prov, out);
        }
        PExpr::Case(c, t, f) => {
            collect_col_refs(c, prov, out);
            collect_col_refs(t, prov, out);
            collect_col_refs(f, prov, out);
        }
        PExpr::Not(a)
        | PExpr::StartsWith(a, _)
        | PExpr::EndsWith(a, _)
        | PExpr::Contains(a, _)
        | PExpr::ContainsWordSeq(a, _, _)
        | PExpr::Substr(a, _, _)
        | PExpr::InList(a, _)
        | PExpr::IsNull(a)
        | PExpr::Year(a) => collect_col_refs(a, prov, out),
    }
}
