//! Encode (DESIGN.md §3e): clears the base-table columns a query touches
//! for packed storage — frame-of-reference bit-packed integers and dates,
//! and bit-packed dictionary codes.
//!
//! Like `Parallelize`, this transformer is a pure decision pass: it leaves
//! the IR untouched (the kernels already scan packed columns without
//! decompressing) and records which `(table, column)` pairs the loader
//! should re-encode after the partition/index/dictionary builds. Only
//! integer, date, and dictionary-coded string attributes are cleared —
//! floats, booleans, and raw strings always stay plain — and the loader's
//! profitability check ([`legobase_storage::Column::encode`]) may still
//! keep a cleared column plain when packing would not shrink it.
use super::plan_info::*;
use crate::ir::{Program, Stmt};
use crate::rules::{TransformCtx, Transformer};
use legobase_engine::expr::Expr as PExpr;
use legobase_engine::plan::Plan;
use legobase_storage::Type;

/// Clears touched Int/Date/dictionary base columns for packed storage.
pub struct Encode;

impl Transformer for Encode {
    fn name(&self) -> &'static str {
        "Encode"
    }

    fn run(&self, mut prog: Program, ctx: &mut TransformCtx<'_>) -> Program {
        // ---- analysis: every base (table, column) the query reads, via the
        // same plan-level provenance the other decision passes use.
        let mut touched: Vec<(String, usize)> = Vec::new();
        walk_plans(ctx, |plan, resolve| match plan {
            Plan::Select { input, predicate } => {
                collect_col_refs(predicate, &resolve(input), &mut touched)
            }
            Plan::Project { input, exprs } => {
                let p = resolve(input);
                for (e, _) in exprs {
                    collect_col_refs(e, &p, &mut touched);
                }
            }
            Plan::HashJoin { left, right, left_keys, right_keys, residual, .. } => {
                let l = resolve(left);
                let r = resolve(right);
                for &k in left_keys {
                    push_prov(&l, k, &mut touched);
                }
                for &k in right_keys {
                    push_prov(&r, k, &mut touched);
                }
                if let Some(res) = residual {
                    let mut p = l;
                    p.extend(r);
                    collect_col_refs(res, &p, &mut touched);
                }
            }
            Plan::Agg { input, group_by, aggs } => {
                let p = resolve(input);
                for a in aggs {
                    collect_col_refs(&a.expr, &p, &mut touched);
                }
                for &g in group_by {
                    push_prov(&p, g, &mut touched);
                }
            }
            Plan::Sort { input, keys } => {
                let p = resolve(input);
                for (k, _) in keys {
                    push_prov(&p, *k, &mut touched);
                }
            }
            _ => {}
        });

        // ---- decision: ints and dates pack directly; strings pack their
        // codes only when a dictionary decision exists (StringDictionary runs
        // earlier in the pipeline); everything else stays plain.
        for (t, c) in touched {
            match ctx.catalog.table(&t).schema.ty(c) {
                Type::Int | Type::Date => ctx.spec.add_encoded_column(&t, c),
                Type::Str if ctx.spec.dict_kind(&t, c).is_some() => {
                    ctx.spec.add_encoded_column(&t, c)
                }
                _ => {}
            }
        }

        let n = ctx.spec.encoded_columns.len();
        if n > 0 {
            // The banner lands in the generated C, like Parallelize's.
            prog.stmts
                .insert(0, Stmt::Comment(format!("encoded column scan: {n} column(s) bit-packed")));
        }
        prog
    }
}

fn push_prov(prov: &Prov, idx: usize, out: &mut Vec<(String, usize)>) {
    if let Some(Some((t, c))) = prov.get(idx) {
        out.push((t.clone(), *c));
    }
}

fn collect_col_refs(e: &PExpr, prov: &Prov, out: &mut Vec<(String, usize)>) {
    match e {
        PExpr::Col(i) => push_prov(prov, *i, out),
        PExpr::Lit(_) => {}
        PExpr::Cmp(_, a, b) | PExpr::Arith(_, a, b) | PExpr::And(a, b) | PExpr::Or(a, b) => {
            collect_col_refs(a, prov, out);
            collect_col_refs(b, prov, out);
        }
        PExpr::Case(c, t, f) => {
            collect_col_refs(c, prov, out);
            collect_col_refs(t, prov, out);
            collect_col_refs(f, prov, out);
        }
        PExpr::Not(a)
        | PExpr::StartsWith(a, _)
        | PExpr::EndsWith(a, _)
        | PExpr::Contains(a, _)
        | PExpr::ContainsWordSeq(a, _, _)
        | PExpr::Substr(a, _, _)
        | PExpr::InList(a, _)
        | PExpr::IsNull(a)
        | PExpr::Year(a) => collect_col_refs(a, prov, out),
    }
}
