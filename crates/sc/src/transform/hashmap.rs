//! HashMapLowering (Section 3.2.2, Fig. 11): generic hash maps become
//! native bucket arrays with intrusive chaining.
use crate::ir::*;
use crate::rules::{rewrite_stmts, TransformCtx, Transformer};

// --------------------------------------------------------------------------
// HashMapLowering (Section 3.2.2, Fig. 11)
// --------------------------------------------------------------------------

/// Lowers generic hash maps to native bucket arrays with intrusive
/// chaining (Section 3.2.2, Fig. 11 / Fig. 7e).
pub struct HashMapLowering;

impl Transformer for HashMapLowering {
    fn name(&self) -> &'static str {
        "HashMapLowering"
    }

    fn run(&self, prog: Program, _ctx: &mut TransformCtx<'_>) -> Program {
        rewrite_stmts(prog, &|s| match s {
            Stmt::MultiMapNew { sym, .. } => Some(vec![Stmt::BucketArrayNew {
                sym: *sym,
                entry: "rec".into(),
                size_hint: SizeHint::Unknown,
                hoisted: false,
            }]),
            Stmt::MultiMapInsert { map, key, row } => {
                Some(vec![Stmt::BucketArrayInsert { arr: *map, key: key.clone(), row: *row }])
            }
            Stmt::MultiMapLookup { map, key, row, body } => Some(vec![Stmt::BucketArrayLookup {
                arr: *map,
                key: key.clone(),
                row: *row,
                body: body.clone(),
            }]),
            Stmt::AggMapNew { sym, key, naggs, store: AggStoreKind::GenericHashMap, hoisted } => {
                Some(vec![Stmt::AggMapNew {
                    sym: *sym,
                    key: key.clone(),
                    naggs: *naggs,
                    store: AggStoreKind::LoweredArray,
                    hoisted: *hoisted,
                }])
            }
            _ => None,
        })
    }
}
