//! HorizontalFusion (Table IV; footnote 18): adjacent loops over the same
//! range fuse into one loop when their bodies are independent.
use crate::ir::*;
use crate::rules::{TransformCtx, Transformer};

// --------------------------------------------------------------------------
// HorizontalFusion (Table IV; footnote 18)
// --------------------------------------------------------------------------

/// Fuses adjacent loops that iterate the same range into one loop
/// ("horizontal loop fusion, in which different loops iterating over the
/// same range are fused into one loop", footnote 18). Two adjacent
/// `ScanLoop`s over the same relation — or two `DateIndexLoop`s over the
/// same index with identical bounds — are merged when their bodies are
/// independent: neither body reads or writes scalar state or collections
/// the other writes, and at most one of them emits result tuples (so the
/// output order is preserved).
pub struct HorizontalFusion;

impl Transformer for HorizontalFusion {
    fn name(&self) -> &'static str {
        "HorizontalFusion"
    }

    fn run(&self, prog: Program, _ctx: &mut TransformCtx<'_>) -> Program {
        horizontal_fuse(prog)
    }
}

/// The fusion pass as a plain function (it is purely structural and needs no
/// compilation context) — used by the semantics property tests.
pub fn horizontal_fuse(prog: Program) -> Program {
    Program { stmts: fuse_block(&prog.stmts), ..prog }
}

fn fuse_block(stmts: &[Stmt]) -> Vec<Stmt> {
    // Bottom-up: fuse inside nested bodies first, then adjacent siblings.
    let mut out: Vec<Stmt> = stmts.iter().map(|s| s.map_bodies(&|b| fuse_block(b))).collect();
    let mut i = 0;
    while i + 1 < out.len() {
        match try_fuse(&out[i], &out[i + 1]) {
            Some(fused) => {
                out[i] = fused;
                out.remove(i + 1);
                // Stay at i: the fused loop may merge with the next one too.
            }
            None => i += 1,
        }
    }
    out
}

fn try_fuse(a: &Stmt, b: &Stmt) -> Option<Stmt> {
    match (a, b) {
        (
            Stmt::ScanLoop { row: r1, table: t1, body: b1 },
            Stmt::ScanLoop { row: r2, table: t2, body: b2 },
        ) if t1 == t2 => fuse_bodies(*r1, b1, *r2, b2).map(|body| Stmt::ScanLoop {
            row: *r1,
            table: t1.clone(),
            body,
        }),
        (
            Stmt::DateIndexLoop { row: r1, table: t1, column: c1, lo: l1, hi: h1, body: b1 },
            Stmt::DateIndexLoop { row: r2, table: t2, column: c2, lo: l2, hi: h2, body: b2 },
        ) if t1 == t2 && c1 == c2 && l1 == l2 && h1 == h2 => {
            fuse_bodies(*r1, b1, *r2, b2).map(|body| Stmt::DateIndexLoop {
                row: *r1,
                table: t1.clone(),
                column: c1.clone(),
                lo: *l1,
                hi: *h1,
                body,
            })
        }
        _ => None,
    }
}

fn fuse_bodies(r1: Sym, b1: &[Stmt], r2: Sym, b2: &[Stmt]) -> Option<Vec<Stmt>> {
    let e1 = body_effects(b1);
    let e2 = body_effects(b2);
    if !fusable(&e1, &e2) {
        return None;
    }
    let mut fused = b1.to_vec();
    fused.extend(subst_sym(b2, r2, r1));
    Some(fused)
}

/// Read/write footprint of a loop body, used as the fusion safety check.
#[derive(Default)]
struct Effects {
    /// Scalar symbols read (free uses; locally-bound symbols are unique
    /// program-wide so cross-body aliasing through locals is impossible).
    reads: Vec<Sym>,
    /// Scalar symbols assigned.
    writes: Vec<Sym>,
    /// Collections probed.
    map_reads: Vec<Sym>,
    /// Collections inserted into / updated.
    map_writes: Vec<Sym>,
    /// Emits result tuples (or sorts/limits the emit buffer).
    emits: bool,
    /// Contains an opaque call — treated as arbitrary effects.
    opaque: bool,
}

fn body_effects(stmts: &[Stmt]) -> Effects {
    let mut e = Effects::default();
    fn expr_effects(x: &Expr, e: &mut Effects) {
        x.syms(&mut e.reads);
        x.visit(&mut |sub| {
            if matches!(sub, Expr::Call(..)) {
                e.opaque = true;
            }
        });
    }
    fn rec(stmts: &[Stmt], e: &mut Effects) {
        for s in stmts {
            match s {
                Stmt::Comment(_) => {}
                Stmt::Let { value, .. } | Stmt::Var { init: value, .. } => {
                    expr_effects(value, e);
                }
                Stmt::Assign { sym, value } => {
                    e.writes.push(*sym);
                    expr_effects(value, e);
                }
                Stmt::If { cond, .. } => expr_effects(cond, e),
                Stmt::ScanLoop { .. } | Stmt::TiledScanLoop { .. } | Stmt::DateIndexLoop { .. } => {
                }
                Stmt::MultiMapNew { .. } | Stmt::BucketArrayNew { .. } | Stmt::AggMapNew { .. } => {
                }
                Stmt::MultiMapInsert { map, key, row } => {
                    e.map_writes.push(*map);
                    expr_effects(key, e);
                    e.reads.push(*row);
                }
                Stmt::MultiMapLookup { map, key, .. } => {
                    e.map_reads.push(*map);
                    expr_effects(key, e);
                }
                Stmt::PartitionLookupLoop { key, .. } => expr_effects(key, e), // load-time data: immutable
                Stmt::BucketArrayInsert { arr, key, row } => {
                    e.map_writes.push(*arr);
                    expr_effects(key, e);
                    e.reads.push(*row);
                }
                Stmt::BucketArrayLookup { arr, key, .. } => {
                    e.map_reads.push(*arr);
                    expr_effects(key, e);
                }
                Stmt::AggUpdate { map, key, updates } => {
                    e.map_writes.push(*map);
                    expr_effects(key, e);
                    for (_, u) in updates {
                        expr_effects(u, e);
                    }
                }
                Stmt::AggForeach { map, .. } => e.map_reads.push(*map),
                Stmt::Emit { values } => {
                    e.emits = true;
                    for v in values {
                        expr_effects(v, e);
                    }
                }
                Stmt::SortEmitted { .. } | Stmt::LimitEmitted { .. } => e.emits = true,
            }
            for b in s.bodies() {
                rec(b, e);
            }
        }
    }
    rec(stmts, &mut e);
    e
}

fn fusable(a: &Effects, b: &Effects) -> bool {
    let disjoint = |x: &[Sym], y: &[Sym]| x.iter().all(|s| !y.contains(s));
    if a.opaque || b.opaque || (a.emits && b.emits) {
        return false;
    }
    disjoint(&a.writes, &b.reads)
        && disjoint(&b.writes, &a.reads)
        && disjoint(&a.writes, &b.writes)
        && disjoint(&a.map_writes, &b.map_reads)
        && disjoint(&b.map_writes, &a.map_reads)
        && disjoint(&a.map_writes, &b.map_writes)
}

/// Renames every free use of `from` to `to` in a statement list (loop-row
/// substitution for fusion). Binders are never renamed: symbols are unique
/// program-wide, so `from` cannot be re-bound inside `stmts`.
fn subst_sym(stmts: &[Stmt], from: Sym, to: Sym) -> Vec<Stmt> {
    stmts
        .iter()
        .map(|s| {
            let s = s.map_bodies(&|b| subst_sym(b, from, to));
            let mut s = s.map_exprs(&|e| match e {
                Expr::Sym(x) if *x == from => Some(Expr::Sym(to)),
                Expr::Field(x, f) if *x == from => Some(Expr::Field(to, f.clone())),
                Expr::ColumnLoad { table, column, idx } if *idx == from => {
                    Some(Expr::ColumnLoad { table: table.clone(), column: column.clone(), idx: to })
                }
                _ => None,
            });
            // Row-valued statement operands are symbols outside expressions.
            match &mut s {
                Stmt::MultiMapInsert { row, .. } | Stmt::BucketArrayInsert { row, .. }
                    if *row == from =>
                {
                    *row = to;
                }
                _ => {}
            }
            s
        })
        .collect()
}
