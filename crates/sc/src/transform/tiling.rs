//! LoopTiling (Section 3.6.3): the opt-in, *instructed* blocked-iteration
//! pass, demonstrating pipeline extension.
use crate::ir::*;
use crate::rules::{rewrite_stmts, TransformCtx, Transformer};

// --------------------------------------------------------------------------
// LoopTiling (Section 3.6.3) — opt-in, demonstrating pipeline extension
// --------------------------------------------------------------------------

/// Tiles base-table scans into fixed-size blocks ("the compiler can be
/// instructed to apply tiling to for loops whose range are known at compile
/// time"). Base-table sizes are known when the query is compiled (load
/// happens first), so every non-buffer `ScanLoop` qualifies. This pass is
/// not part of the default pipeline — it is the paper's example of an
/// *instructed* optimization, plugged in by the developer:
///
/// ```
/// use legobase_engine::Settings;
/// use legobase_sc::transform::LoopTiling;
/// use legobase_sc::Pipeline;
///
/// let settings = Settings::optimized();
/// let mut p = Pipeline::for_settings(&settings);
/// p.add(LoopTiling::default());
/// ```
pub struct LoopTiling {
    /// Block size (rows per tile).
    pub tile: usize,
}

impl Default for LoopTiling {
    fn default() -> Self {
        LoopTiling { tile: 1024 }
    }
}

impl Transformer for LoopTiling {
    fn name(&self) -> &'static str {
        "LoopTiling"
    }

    fn run(&self, prog: Program, ctx: &mut TransformCtx<'_>) -> Program {
        let tile = self.tile.max(1);
        rewrite_stmts(prog, &|s| match s {
            Stmt::ScanLoop { row, table, body } if ctx.catalog.get(table).is_some() => {
                Some(vec![Stmt::TiledScanLoop {
                    row: *row,
                    table: table.clone(),
                    tile,
                    body: body.clone(),
                }])
            }
            _ => None,
        })
    }
}
