//! Fine-grained optimizations (Section 3.6.3): `x && y → x & y` when both
//! operands are cheap and pure.
use crate::ir::*;
use crate::rules::{rewrite_exprs, TransformCtx, Transformer};

// --------------------------------------------------------------------------
// Fine-grained optimizations (Section 3.6.3)
// --------------------------------------------------------------------------

/// The fine-grained `x && y → x & y` rewrite (Section 3.6.3): improves
/// branch prediction when both operands are pure and cheap.
pub struct FineGrained;

impl Transformer for FineGrained {
    fn name(&self) -> &'static str {
        "FineGrained(&&→&)"
    }

    fn run(&self, prog: Program, _ctx: &mut TransformCtx<'_>) -> Program {
        // `x && y → x & y` when the right operand is pure and cheap (no
        // string loop, no call): improves branch prediction.
        rewrite_exprs(prog, &|e| match e {
            Expr::Bin(BinOp::And, a, b) if cheap_bool(a) && cheap_bool(b) => {
                Some(Expr::bin(BinOp::BitAnd, a.as_ref().clone(), b.as_ref().clone()))
            }
            _ => None,
        })
    }
}

fn cheap_bool(e: &Expr) -> bool {
    match e {
        Expr::Bin(op, a, b) if op.is_comparison() => a.is_pure() && b.is_pure(),
        Expr::Bin(BinOp::BitAnd, a, b) => cheap_bool(a) && cheap_bool(b),
        Expr::DictOp { .. } => true,
        Expr::Bool(_) => true,
        _ => false,
    }
}
