//! Plan-level provenance shared by the analysis phases: which base
//! (table, column) feeds each output column of an operator. The paper's
//! transformers read the same information from the operator objects still
//! present at high IR levels.
use crate::rules::TransformCtx;
use legobase_engine::expr::Expr as PExpr;
use legobase_engine::plan::{JoinKind, Plan};
use std::collections::HashMap;

// --------------------------------------------------------------------------
// Plan-level provenance: which base (table, column) feeds each output column
// of an operator. The paper's transformers read the same information from
// the operator objects still present at high IR levels.
// --------------------------------------------------------------------------

pub(crate) type Prov = Vec<Option<(String, usize)>>;

pub(crate) fn provenance(
    plan: &Plan,
    ctx: &TransformCtx<'_>,
    stage_prov: &HashMap<String, Prov>,
) -> Prov {
    match plan {
        Plan::Scan { table } => {
            if let Some(p) = stage_prov.get(table) {
                p.clone()
            } else {
                let schema = &ctx.catalog.table(table).schema;
                (0..schema.len()).map(|i| Some((table.clone(), i))).collect()
            }
        }
        Plan::Select { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. }
        | Plan::Distinct { input } => provenance(input, ctx, stage_prov),
        Plan::Project { input, exprs } => {
            let inner = provenance(input, ctx, stage_prov);
            exprs
                .iter()
                .map(|(e, _)| match e {
                    PExpr::Col(i) => inner[*i].clone(),
                    _ => None,
                })
                .collect()
        }
        Plan::HashJoin { left, right, kind, .. } => {
            let mut l = provenance(left, ctx, stage_prov);
            match kind {
                JoinKind::Inner | JoinKind::LeftOuter => {
                    l.extend(provenance(right, ctx, stage_prov));
                }
                JoinKind::Semi | JoinKind::Anti => {}
            }
            l
        }
        Plan::Agg { input, group_by, aggs } => {
            let inner = provenance(input, ctx, stage_prov);
            let mut out: Prov = group_by.iter().map(|&g| inner[g].clone()).collect();
            out.extend(std::iter::repeat_n(None, aggs.len()));
            out
        }
    }
}

/// Runs `visit(plan, prov_of_its_input(s))` over every operator of the query.
pub(crate) fn walk_plans(
    ctx: &TransformCtx<'_>,
    mut visit: impl FnMut(&Plan, &dyn Fn(&Plan) -> Prov),
) {
    let mut stage_prov: HashMap<String, Prov> = HashMap::new();
    let mut all: Vec<&Plan> = Vec::new();
    for (name, plan) in &ctx.query.stages {
        // Record the stage output provenance before the later plans run.
        all.push(plan);
        let resolver_map = stage_prov.clone();
        let p = provenance(plan, ctx, &resolver_map);
        stage_prov.insert(format!("#{name}"), p);
    }
    all.push(&ctx.query.root);
    let resolver_map = stage_prov;
    for plan in all {
        let resolve = |p: &Plan| provenance(p, ctx, &resolver_map);
        fn rec(
            plan: &Plan,
            visit: &mut impl FnMut(&Plan, &dyn Fn(&Plan) -> Prov),
            resolve: &dyn Fn(&Plan) -> Prov,
        ) {
            visit(plan, resolve);
            for c in plan.children() {
                rec(c, visit, resolve);
            }
        }
        rec(plan, &mut visit, &resolve);
    }
}

/// The base table a plan node scans, seen through filters (the executor's
/// `chunk.base` propagation).
pub(crate) fn base_table(plan: &Plan) -> Option<&str> {
    match plan {
        Plan::Scan { table } if !table.starts_with('#') => Some(table),
        Plan::Select { input, .. } => base_table(input),
        _ => None,
    }
}
