//! The LegoBase transformation library: one [`Transformer`](crate::rules::Transformer) per entry of the
//! Fig. 5b pipeline, one module per transformer (the per-transformer line
//! counts are the Table IV productivity experiment — see `figures table4`).
//!
//! Each transformer does two things, matching the paper's architecture:
//!
//! 1. **IR rewriting** — replace high-level nodes with their lowered form
//!    (the progressive lowering of Fig. 7);
//! 2. **Specialization reporting** — record the load-time decisions
//!    (partitions to build, date attributes to index, dictionary kinds,
//!    attributes to keep) in the [`crate::rules::TransformCtx`]'s
//!    [`legobase_engine::Specialization`], which the specialized executor
//!    consumes. Analyses run over the still-visible operator structure,
//!    exactly as the paper's high-level transformers pattern-match on
//!    operator objects.

mod plan_info;

mod cleanup;
mod column;
mod encode;
mod finegrained;
mod fusion;
mod hashmap;
mod hoist;
mod parallelize;
mod partition;
mod promote;
mod scala_lowering;
mod singleton;
mod strdict;
mod tiling;

pub use cleanup::{
    common_subexpression_eliminate, constant_fold, dead_code_eliminate, scalar_replace, Cleanup,
};
pub use column::ColumnStore;
pub use encode::Encode;
pub use finegrained::FineGrained;
pub use fusion::{horizontal_fuse, HorizontalFusion};
pub use hashmap::HashMapLowering;
pub use hoist::CodeMotionHoisting;
pub use parallelize::Parallelize;
pub use partition::PartitioningAndDateIndices;
pub use promote::FieldPromotion;
pub use scala_lowering::ScalaToCLowering;
pub use singleton::SingletonHashMapToValue;
pub use strdict::StringDictionary;
pub use tiling::LoopTiling;

#[cfg(test)]
mod tests {
    #[allow(unused_imports)]
    use super::promote::stmt_exprs;
    use super::*;
    use crate::ir::{BinOp, Expr, Stmt};
    use crate::ir::{Program, Sym, Ty};
    use crate::rules::{TransformCtx, Transformer};
    use legobase_engine::plan::Plan;

    fn ctx_parts(
    ) -> (legobase_storage::Catalog, legobase_engine::Settings, legobase_engine::QueryPlan) {
        (
            legobase_tpch::catalog(),
            legobase_engine::Settings::optimized(),
            legobase_engine::QueryPlan::new("t", Plan::scan("lineitem")),
        )
    }

    /// A scan loop accumulating one field into `acc`.
    fn sum_loop(row: Sym, acc: Sym, table: &str, field: &str) -> Stmt {
        Stmt::ScanLoop {
            row,
            table: table.into(),
            body: vec![Stmt::Assign {
                sym: acc,
                value: Expr::bin(BinOp::Add, Expr::sym(acc), Expr::Field(row, field.into())),
            }],
        }
    }

    #[test]
    fn horizontal_fusion_merges_independent_scans() {
        let (catalog, settings, query) = ctx_parts();
        let mut ctx = TransformCtx {
            catalog: &catalog,
            settings: &settings,
            query: &query,
            spec: Default::default(),
        };
        let prog = Program {
            name: "hf".into(),
            next_sym: 10,
            stmts: vec![
                Stmt::Var { sym: Sym(0), ty: Ty::F64, init: Expr::Float(0.0) },
                Stmt::Var { sym: Sym(1), ty: Ty::F64, init: Expr::Float(0.0) },
                sum_loop(Sym(2), Sym(0), "lineitem", "l_quantity"),
                sum_loop(Sym(3), Sym(1), "lineitem", "l_extendedprice"),
                Stmt::Emit { values: vec![Expr::sym(Sym(0)), Expr::sym(Sym(1))] },
            ],
        };
        let out = HorizontalFusion.run(prog, &mut ctx);
        assert_eq!(out.count(|s| matches!(s, Stmt::ScanLoop { .. })), 1, "loops must fuse");
        // The second body's row was renamed to the surviving binder.
        let mut saw_renamed = false;
        out.walk(&mut |s| {
            if let Stmt::Assign { sym: _, value } = s {
                value.visit(&mut |e| {
                    if matches!(e, Expr::Field(r, f) if *r == Sym(2) && f == "l_extendedprice") {
                        saw_renamed = true;
                    }
                });
            }
        });
        assert!(saw_renamed, "row symbol of the second loop must be substituted");
    }

    #[test]
    fn horizontal_fusion_respects_flow_dependencies() {
        let (catalog, settings, query) = ctx_parts();
        let mut ctx = TransformCtx {
            catalog: &catalog,
            settings: &settings,
            query: &query,
            spec: Default::default(),
        };
        // Loop 2 reads the accumulator loop 1 writes: the original program
        // sees the *final* total in every iteration; fusing would interleave.
        let prog = Program {
            name: "dep".into(),
            next_sym: 10,
            stmts: vec![
                Stmt::Var { sym: Sym(0), ty: Ty::F64, init: Expr::Float(0.0) },
                Stmt::Var { sym: Sym(1), ty: Ty::F64, init: Expr::Float(0.0) },
                sum_loop(Sym(2), Sym(0), "lineitem", "l_quantity"),
                Stmt::ScanLoop {
                    row: Sym(3),
                    table: "lineitem".into(),
                    body: vec![Stmt::Assign {
                        sym: Sym(1),
                        value: Expr::bin(BinOp::Add, Expr::sym(Sym(1)), Expr::sym(Sym(0))),
                    }],
                },
                Stmt::Emit { values: vec![Expr::sym(Sym(1))] },
            ],
        };
        let out = HorizontalFusion.run(prog, &mut ctx);
        assert_eq!(
            out.count(|s| matches!(s, Stmt::ScanLoop { .. })),
            2,
            "dependent loops must not fuse"
        );
    }

    #[test]
    fn horizontal_fusion_rejects_double_emit_and_different_tables() {
        let (catalog, settings, query) = ctx_parts();
        let mut ctx = TransformCtx {
            catalog: &catalog,
            settings: &settings,
            query: &query,
            spec: Default::default(),
        };
        let emit_loop = |row: u32, table: &str| Stmt::ScanLoop {
            row: Sym(row),
            table: table.into(),
            body: vec![Stmt::Emit { values: vec![Expr::Field(Sym(row), "l_tax".into())] }],
        };
        // Both loops emit: fusing would interleave the output order.
        let prog = Program {
            name: "emits".into(),
            next_sym: 10,
            stmts: vec![emit_loop(0, "lineitem"), emit_loop(1, "lineitem")],
        };
        let out = HorizontalFusion.run(prog, &mut ctx);
        assert_eq!(out.count(|s| matches!(s, Stmt::ScanLoop { .. })), 2);
        // Different relations: never fusable.
        let prog = Program {
            name: "tables".into(),
            next_sym: 10,
            stmts: vec![emit_loop(0, "lineitem"), emit_loop(1, "orders")],
        };
        let out = HorizontalFusion.run(prog, &mut ctx);
        assert_eq!(out.count(|s| matches!(s, Stmt::ScanLoop { .. })), 2);
    }

    #[test]
    fn horizontal_fusion_chains_three_loops() {
        let (catalog, settings, query) = ctx_parts();
        let mut ctx = TransformCtx {
            catalog: &catalog,
            settings: &settings,
            query: &query,
            spec: Default::default(),
        };
        let mut stmts: Vec<Stmt> = (0..3)
            .map(|i| Stmt::Var { sym: Sym(i), ty: Ty::F64, init: Expr::Float(0.0) })
            .collect();
        for i in 0..3u32 {
            stmts.push(sum_loop(Sym(10 + i), Sym(i), "lineitem", "l_discount"));
        }
        stmts.push(Stmt::Emit { values: (0..3).map(|i| Expr::sym(Sym(i))).collect() });
        let prog = Program { name: "chain".into(), next_sym: 20, stmts };
        let out = HorizontalFusion.run(prog, &mut ctx);
        assert_eq!(out.count(|s| matches!(s, Stmt::ScanLoop { .. })), 1, "all three loops fuse");
    }

    #[test]
    fn field_promotion_hoists_repeated_reads() {
        let (catalog, settings, query) = ctx_parts();
        let mut ctx = TransformCtx {
            catalog: &catalog,
            settings: &settings,
            query: &query,
            spec: Default::default(),
        };
        let row = Sym(0);
        // l_quantity is read twice, l_tax once.
        let prog = Program {
            name: "fp".into(),
            next_sym: 10,
            stmts: vec![
                Stmt::Var { sym: Sym(1), ty: Ty::F64, init: Expr::Float(0.0) },
                Stmt::ScanLoop {
                    row,
                    table: "lineitem".into(),
                    body: vec![Stmt::If {
                        cond: Expr::bin(
                            BinOp::Lt,
                            Expr::Field(row, "l_quantity".into()),
                            Expr::Float(24.0),
                        ),
                        then_b: vec![Stmt::Assign {
                            sym: Sym(1),
                            value: Expr::bin(
                                BinOp::Add,
                                Expr::Field(row, "l_quantity".into()),
                                Expr::Field(row, "l_tax".into()),
                            ),
                        }],
                        else_b: vec![],
                    }],
                },
                Stmt::Emit { values: vec![Expr::sym(Sym(1))] },
            ],
        };
        let out = FieldPromotion.run(prog, &mut ctx);
        // Exactly one Var was inserted inside the loop, initialized from the
        // promoted field; the two uses now reference the local.
        let mut promoted_vars = 0;
        let mut field_reads = 0;
        out.walk(&mut |s| {
            if let Stmt::Var { init: Expr::Field(_, f), .. } = s {
                if f == "l_quantity" {
                    promoted_vars += 1;
                }
            }
            stmt_exprs(s, &mut |e| {
                e.visit(&mut |x| {
                    if matches!(x, Expr::Field(_, f) if f == "l_quantity") {
                        field_reads += 1;
                    }
                });
            });
        });
        assert_eq!(promoted_vars, 1, "one hoisted local for l_quantity");
        assert_eq!(field_reads, 1, "only the hoisted load reads the field");
        // The single-use field is left alone.
        assert_eq!(
            out.count(|s| matches!(s, Stmt::Var { init: Expr::Field(_, f), .. } if f == "l_tax")),
            0
        );
    }

    #[test]
    fn field_promotion_keeps_columnar_access_form() {
        // After ColumnStore, repeated reads are `ColumnLoad`s; the hoisted
        // local must load through the column vector too (not regress to a
        // struct access), and a dictionary-coded string column promotes as
        // an integer local.
        let (catalog, settings, query) = ctx_parts();
        let mut ctx = TransformCtx {
            catalog: &catalog,
            settings: &settings,
            query: &query,
            spec: Default::default(),
        };
        let row = Sym(0);
        let load =
            |col: &str| Expr::ColumnLoad { table: "lineitem".into(), column: col.into(), idx: row };
        let prog = Program {
            name: "colform".into(),
            next_sym: 10,
            stmts: vec![Stmt::ScanLoop {
                row,
                table: "lineitem".into(),
                body: vec![Stmt::Emit {
                    values: vec![
                        Expr::bin(BinOp::Add, load("l_quantity"), load("l_quantity")),
                        Expr::bin(BinOp::Eq, load("l_shipmode"), load("l_shipmode")),
                    ],
                }],
            }],
        };
        let out = FieldPromotion.run(prog, &mut ctx);
        let mut qty_init_columnar = false;
        let mut shipmode_ty_int = false;
        out.walk(&mut |s| {
            if let Stmt::Var { ty, init: Expr::ColumnLoad { column, .. }, .. } = s {
                if column == "l_quantity" {
                    qty_init_columnar = true;
                }
                if column == "l_shipmode" {
                    shipmode_ty_int = *ty == Ty::I64;
                }
            }
        });
        assert!(qty_init_columnar, "hoisted load must stay columnar");
        assert!(shipmode_ty_int, "dictionary-coded string promotes as an integer local");
    }

    #[test]
    fn field_promotion_skips_unknown_rows() {
        let (catalog, settings, query) = ctx_parts();
        let mut ctx = TransformCtx {
            catalog: &catalog,
            settings: &settings,
            query: &query,
            spec: Default::default(),
        };
        // Buffer rows have no schema: nothing to promote.
        let row = Sym(0);
        let prog = Program {
            name: "buf".into(),
            next_sym: 10,
            stmts: vec![Stmt::ScanLoop {
                row,
                table: "#stage1".into(),
                body: vec![Stmt::Emit {
                    values: vec![Expr::Field(row, "a".into()), Expr::Field(row, "a".into())],
                }],
            }],
        };
        let before = prog.clone();
        let out = FieldPromotion.run(prog, &mut ctx);
        assert_eq!(out, before);
    }

    #[test]
    fn loop_tiling_wraps_base_scans_only() {
        let (catalog, settings, query) = ctx_parts();
        let mut ctx = TransformCtx {
            catalog: &catalog,
            settings: &settings,
            query: &query,
            spec: Default::default(),
        };
        let prog = Program {
            name: "tile".into(),
            next_sym: 10,
            stmts: vec![
                sum_loop(Sym(0), Sym(5), "lineitem", "l_quantity"),
                Stmt::ScanLoop {
                    row: Sym(1),
                    table: "#stage1".into(),
                    body: vec![Stmt::Emit { values: vec![Expr::sym(Sym(1))] }],
                },
            ],
        };
        let out = LoopTiling { tile: 256 }.run(prog, &mut ctx);
        assert_eq!(out.count(|s| matches!(s, Stmt::TiledScanLoop { tile: 256, .. })), 1);
        assert_eq!(
            out.count(|s| matches!(s, Stmt::ScanLoop { table, .. } if table == "#stage1")),
            1,
            "buffer scans have unknown compile-time range and stay untiled"
        );
    }

    /// The motivating example of Fig. 2: once the aggregations are compiled
    /// together, `1 - S.B` is shared between them.
    #[test]
    fn cse_shares_fig2_subexpression() {
        let row = Sym(0);
        let one_minus_b = Expr::bin(BinOp::Sub, Expr::Float(1.0), Expr::Field(row, "b".into()));
        let prog = Program {
            name: "fig2".into(),
            next_sym: 10,
            stmts: vec![
                Stmt::Let { sym: Sym(1), ty: Ty::F64, value: one_minus_b.clone() },
                Stmt::Let {
                    sym: Sym(2),
                    ty: Ty::F64,
                    value: Expr::bin(BinOp::Mul, Expr::Field(row, "a".into()), one_minus_b.clone()),
                },
                Stmt::Let {
                    sym: Sym(3),
                    ty: Ty::F64,
                    value: Expr::bin(
                        BinOp::Mul,
                        Expr::bin(BinOp::Mul, Expr::Field(row, "a".into()), one_minus_b),
                        Expr::bin(BinOp::Add, Expr::Float(1.0), Expr::Field(row, "c".into())),
                    ),
                },
            ],
        };
        let out = common_subexpression_eliminate(prog);
        // The second and third aggregations now reference x1 / x2.
        let Stmt::Let { value: v2, .. } = &out.stmts[1] else { panic!() };
        assert_eq!(*v2, Expr::bin(BinOp::Mul, Expr::Field(row, "a".into()), Expr::sym(Sym(1))));
        let Stmt::Let { value: v3, .. } = &out.stmts[2] else { panic!() };
        // `a * (1-b)` itself was bound to x2 and is reused.
        assert_eq!(
            *v3,
            Expr::bin(
                BinOp::Mul,
                Expr::sym(Sym(2)),
                Expr::bin(BinOp::Add, Expr::Float(1.0), Expr::Field(row, "c".into()))
            )
        );
    }

    /// Mutation invalidates cached expressions.
    #[test]
    fn cse_invalidated_by_assignment() {
        let e = Expr::bin(BinOp::Add, Expr::sym(Sym(0)), Expr::Int(1));
        let prog = Program {
            name: "inv".into(),
            next_sym: 10,
            stmts: vec![
                Stmt::Var { sym: Sym(0), ty: Ty::I64, init: Expr::Int(1) },
                Stmt::Let { sym: Sym(1), ty: Ty::I64, value: e.clone() },
                Stmt::Assign { sym: Sym(0), value: Expr::Int(5) },
                Stmt::Let { sym: Sym(2), ty: Ty::I64, value: e.clone() },
            ],
        };
        let out = common_subexpression_eliminate(prog);
        let Stmt::Let { value, .. } = &out.stmts[3] else { panic!() };
        assert_eq!(*value, e, "stale cache entry must not be reused after mutation");
    }

    /// Branch-local definitions do not leak out of their `if`.
    #[test]
    fn cse_respects_branch_scope() {
        let e = Expr::bin(BinOp::Mul, Expr::sym(Sym(0)), Expr::sym(Sym(0)));
        let prog = Program {
            name: "scope".into(),
            next_sym: 10,
            stmts: vec![
                Stmt::Var { sym: Sym(0), ty: Ty::I64, init: Expr::Int(3) },
                Stmt::If {
                    cond: Expr::Bool(true),
                    then_b: vec![Stmt::Let { sym: Sym(1), ty: Ty::I64, value: e.clone() }],
                    else_b: vec![],
                },
                Stmt::Let { sym: Sym(2), ty: Ty::I64, value: e.clone() },
            ],
        };
        let out = common_subexpression_eliminate(prog);
        let Stmt::Let { value, .. } = &out.stmts[2] else { panic!() };
        assert_eq!(*value, e, "definition inside a branch must not be visible after it");
    }
}
