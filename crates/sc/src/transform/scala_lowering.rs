//! ScalaToCLowering — the final validation/lowering marker (Section 2.3).
use crate::ir::*;
use crate::rules::{TransformCtx, Transformer};

// --------------------------------------------------------------------------
// ScalaToCLowering — the final validation/lowering marker (Section 2.3)
// --------------------------------------------------------------------------

/// The explicit boundary after which code generation runs (Section 2.3):
/// every surviving construct has a one-to-one C rendering.
pub struct ScalaToCLowering;

impl Transformer for ScalaToCLowering {
    fn name(&self) -> &'static str {
        "ScalaToCLowering"
    }

    fn run(&self, prog: Program, _ctx: &mut TransformCtx<'_>) -> Program {
        // All remaining constructs have a one-to-one C rendering; this pass
        // is the explicit boundary after which the code generator runs
        // ("generation of the final code becomes a trivial and naive
        // stringification", Section 2.3).
        prog
    }
}
