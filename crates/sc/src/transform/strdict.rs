//! StringDictionary (Section 3.4, Table II): string operations become
//! integer operations through per-attribute dictionaries.
use super::plan_info::*;
use crate::ir::*;
use crate::rules::{rewrite_exprs, TransformCtx, Transformer};
use legobase_engine::expr::{CmpOp, Expr as PExpr};
use legobase_engine::plan::{JoinKind, Plan};
use legobase_storage::{DictKind, Type};

// --------------------------------------------------------------------------
// StringDictionary (Section 3.4, Table II)
// --------------------------------------------------------------------------

/// String-dictionary lowering (Section 3.4, Table II): decides a
/// dictionary kind per string attribute and rewrites string operations to
/// integer operations on codes.
pub struct StringDictionary;

impl Transformer for StringDictionary {
    fn name(&self) -> &'static str {
        "StringDictionary"
    }

    fn run(&self, prog: Program, ctx: &mut TransformCtx<'_>) -> Program {
        // ---- analysis: find string operations over base attributes and
        // string-typed group keys; decide dictionary kinds.
        let mut dicts: Vec<(String, usize, DictKind)> = Vec::new();
        walk_plans(ctx, |plan, resolve| {
            let mut scan_expr = |e: &PExpr, prov: &Prov| collect_string_ops(e, prov, &mut dicts);
            match plan {
                Plan::Select { input, predicate } => scan_expr(predicate, &resolve(input)),
                Plan::Project { input, exprs } => {
                    let p = resolve(input);
                    for (e, _) in exprs {
                        scan_expr(e, &p);
                    }
                }
                Plan::HashJoin { left, right, residual: Some(r), kind, .. } => {
                    let mut p = resolve(left);
                    match kind {
                        JoinKind::Inner | JoinKind::LeftOuter => p.extend(resolve(right)),
                        // Residuals of semi/anti joins see the concatenated
                        // schema too.
                        JoinKind::Semi | JoinKind::Anti => p.extend(resolve(right)),
                    }
                    scan_expr(r, &p);
                }
                Plan::Agg { input, group_by, aggs } => {
                    let p = resolve(input);
                    for a in aggs {
                        scan_expr(&a.expr, &p);
                    }
                    // String-typed group keys become dictionary codes so the
                    // executor can pack them (Q1's return flag / line status).
                    for &g in group_by {
                        if let Some((t, c)) = &p[g] {
                            if ctx.catalog.table(t).schema.ty(*c) == Type::Str {
                                dicts.push((t.clone(), *c, DictKind::Normal));
                            }
                        }
                    }
                }
                _ => {}
            }
        });
        for (t, c, k) in dicts {
            ctx.spec.add_dictionary(&t, c, k);
        }

        // ---- IR rewriting: string ops become integer ops (Table II).
        rewrite_exprs(prog, &|e| match e {
            Expr::StrOp(op, arg, lit) => {
                Some(Expr::DictOp { op: *op, code: arg.clone(), lit: lit.clone() })
            }
            _ => None,
        })
    }
}

fn collect_string_ops(e: &PExpr, prov: &Prov, out: &mut Vec<(String, usize, DictKind)>) {
    let mut record = |inner: &PExpr, kind: DictKind| {
        if let PExpr::Col(i) = inner {
            if let Some(Some((t, c))) = prov.get(*i) {
                out.push((t.clone(), *c, kind));
            }
        }
    };
    match e {
        PExpr::Cmp(op, a, b) => {
            if let PExpr::Lit(legobase_storage::Value::Str(_)) = b.as_ref() {
                let kind = match op {
                    CmpOp::Eq | CmpOp::Ne => DictKind::Normal,
                    _ => DictKind::Ordered,
                };
                record(a, kind);
            }
            collect_string_ops(a, prov, out);
            collect_string_ops(b, prov, out);
        }
        PExpr::StartsWith(a, _) | PExpr::EndsWith(a, _) => {
            record(a, DictKind::Ordered);
            collect_string_ops(a, prov, out);
        }
        PExpr::Contains(a, _) => {
            record(a, DictKind::Normal);
            collect_string_ops(a, prov, out);
        }
        PExpr::ContainsWordSeq(a, _, _) => {
            record(a, DictKind::WordToken);
            collect_string_ops(a, prov, out);
        }
        PExpr::InList(a, vals) => {
            if vals.iter().any(|v| matches!(v, legobase_storage::Value::Str(_))) {
                record(a, DictKind::Normal);
            }
            collect_string_ops(a, prov, out);
        }
        PExpr::And(a, b) | PExpr::Or(a, b) | PExpr::Arith(_, a, b) => {
            collect_string_ops(a, prov, out);
            collect_string_ops(b, prov, out);
        }
        PExpr::Case(c, t, f) => {
            collect_string_ops(c, prov, out);
            collect_string_ops(t, prov, out);
            collect_string_ops(f, prov, out);
        }
        PExpr::Not(a) | PExpr::Substr(a, _, _) | PExpr::IsNull(a) | PExpr::Year(a) => {
            collect_string_ops(a, prov, out);
        }
        _ => {}
    }
}
