//! PartitioningAndDateIndices (Sections 3.2.1 and 3.2.3): lowers join
//! MultiMaps with annotated keys to load-time partition dereferences
//! (Fig. 10) and date-filtered scans to year-bucket loops (Fig. 12).
use super::plan_info::*;
use crate::ir::*;
use crate::rules::{rewrite_stmts, TransformCtx, Transformer};
use legobase_engine::expr::{CmpOp, Expr as PExpr};
use legobase_engine::plan::Plan;
use legobase_storage::Type;
use std::collections::HashMap;

// --------------------------------------------------------------------------
// PartitioningAndDateIndices (Section 3.2.1, 3.2.3)
// --------------------------------------------------------------------------

/// Data partitioning (Section 3.2.1, Fig. 10) and automatic date indices
/// (Section 3.2.3, Fig. 12): join MultiMaps keyed by annotated PK/FK
/// attributes become load-time partition dereferences; date-range-filtered
/// scans become year-bucket loops.
pub struct PartitioningAndDateIndices;

impl Transformer for PartitioningAndDateIndices {
    fn name(&self) -> &'static str {
        "PartitioningAndDateIndices"
    }

    fn run(&self, prog: Program, ctx: &mut TransformCtx<'_>) -> Program {
        // ---- analysis (plan level): which partitions to build at load time.
        let mut decisions: Vec<(String, usize, bool)> = Vec::new(); // (table, col, is_pk)
        let mut date_cols: Vec<(String, usize)> = Vec::new();
        walk_plans(ctx, |plan, _resolve| {
            if let Plan::HashJoin { right, right_keys, .. } = plan {
                if right_keys.len() == 1 {
                    if let Some(table) = base_table(right) {
                        let meta = ctx.catalog.table(table);
                        let col = right_keys[0];
                        if meta.schema.ty(col) == Type::Int {
                            let is_single_pk =
                                meta.primary_key.len() == 1 && meta.primary_key[0] == col;
                            decisions.push((table.to_string(), col, is_single_pk));
                        }
                    }
                }
            }
            if let Plan::Select { input, predicate } = plan {
                if let Some(table) = base_table(input) {
                    if matches!(input.as_ref(), Plan::Scan { .. }) {
                        let schema = &ctx.catalog.table(table).schema;
                        for (i, c) in date_range_columns(predicate) {
                            let _ = i;
                            if schema.ty(c) == Type::Date {
                                date_cols.push((table.to_string(), c));
                            }
                        }
                    }
                }
            }
        });
        for (table, col, is_pk) in &decisions {
            if *is_pk {
                ctx.spec.add_pk_index(table, *col);
            } else {
                ctx.spec.add_fk_partition(table, *col);
            }
        }
        for (table, col) in &date_cols {
            ctx.spec.add_date_index(table, *col);
        }

        // ---- IR rewriting: lower MultiMaps with annotated keys to direct
        // partition dereferences (Fig. 10), and date-filtered scans to
        // year-bucket loops (Fig. 12).
        let mut partitioned_maps: HashMap<Sym, (String, String)> = HashMap::new();
        prog.walk(&mut |s| {
            if let Stmt::MultiMapNew { sym, key } = s {
                if let (Some(t), Some(c)) = (&key.table, &key.column) {
                    if ctx.catalog.get(t).is_some() {
                        partitioned_maps.insert(*sym, (t.clone(), c.clone()));
                    }
                }
            }
        });
        let prog = rewrite_stmts(prog, &|s| match s {
            Stmt::MultiMapNew { sym, .. } if partitioned_maps.contains_key(sym) => {
                Some(vec![Stmt::Comment("partition built at load time (Section 3.2.1)".into())])
            }
            Stmt::MultiMapInsert { map, .. } if partitioned_maps.contains_key(map) => Some(vec![]),
            Stmt::MultiMapLookup { map, key, row, body } => {
                partitioned_maps.get(map).map(|(t, c)| {
                    vec![Stmt::PartitionLookupLoop {
                        table: t.clone(),
                        column: c.clone(),
                        key: key.clone(),
                        row: *row,
                        body: body.clone(),
                    }]
                })
            }
            _ => None,
        });
        // Date-index loops.
        rewrite_stmts(prog, &|s| {
            let Stmt::ScanLoop { row, table, body } = s else { return None };
            if table.starts_with('#') || body.len() != 1 {
                return None;
            }
            let Stmt::If { cond, then_b, else_b } = &body[0] else { return None };
            if !else_b.is_empty() {
                return None;
            }
            let (col, lo, hi, rest) = extract_date_range(cond, *row)?;
            if !ctx.spec.has_date_index(table, ctx.catalog.table(table).schema.col(&col)) {
                return None;
            }
            let inner = if let Some(rest) = rest {
                vec![Stmt::If { cond: rest, then_b: then_b.clone(), else_b: vec![] }]
            } else {
                then_b.clone()
            };
            Some(vec![Stmt::DateIndexLoop {
                row: *row,
                table: table.clone(),
                column: col,
                lo,
                hi,
                body: inner,
            }])
        })
    }
}

/// Columns constrained by date-range comparisons in a plan predicate.
fn date_range_columns(predicate: &PExpr) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    fn rec(e: &PExpr, out: &mut Vec<(usize, usize)>) {
        match e {
            PExpr::And(a, b) => {
                rec(a, out);
                rec(b, out);
            }
            PExpr::Cmp(op, a, b) => {
                if matches!(op, CmpOp::Ge | CmpOp::Gt | CmpOp::Le | CmpOp::Lt) {
                    if let (PExpr::Col(c), PExpr::Lit(legobase_storage::Value::Date(_))) =
                        (a.as_ref(), b.as_ref())
                    {
                        out.push((0, *c));
                    }
                }
            }
            _ => {}
        }
    }
    rec(predicate, &mut out);
    out
}

/// Extracts `[lo, hi]` day bounds on a date field of `row` from an IR
/// condition, returning the column, bounds, and the residual condition.
fn extract_date_range(cond: &Expr, row: Sym) -> Option<(String, i32, i32, Option<Expr>)> {
    let mut conjuncts = Vec::new();
    fn split(e: &Expr, out: &mut Vec<Expr>) {
        if let Expr::Bin(BinOp::And, a, b) = e {
            split(a, out);
            split(b, out);
        } else {
            out.push(e.clone());
        }
    }
    split(cond, &mut conjuncts);
    let mut col: Option<String> = None;
    let mut lo = i32::MIN / 2;
    let mut hi = i32::MAX / 2;
    let mut rest = Vec::new();
    for c in conjuncts {
        let mut captured = false;
        if let Expr::Bin(op, a, b) = &c {
            if let (Expr::Field(r, f), Expr::Date(d)) = (a.as_ref(), b.as_ref()) {
                if *r == row && (col.is_none() || col.as_deref() == Some(f.as_str())) {
                    match op {
                        BinOp::Ge => {
                            col = Some(f.clone());
                            lo = lo.max(*d);
                            captured = true;
                        }
                        BinOp::Gt => {
                            col = Some(f.clone());
                            lo = lo.max(*d + 1);
                            captured = true;
                        }
                        BinOp::Le => {
                            col = Some(f.clone());
                            hi = hi.min(*d);
                            captured = true;
                        }
                        BinOp::Lt => {
                            col = Some(f.clone());
                            hi = hi.min(*d - 1);
                            captured = true;
                        }
                        _ => {}
                    }
                }
            }
        }
        if !captured {
            rest.push(c);
        }
    }
    let col = col?;
    let rest = if rest.is_empty() { None } else { Some(Expr::conj(rest)) };
    Some((col, lo, hi, rest))
}
