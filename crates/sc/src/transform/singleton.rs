//! SingletonHashMapToValue (Section 3.2.2): an aggregation map whose every
//! update uses a constant key collapses to a single global slot (Q6).
use crate::ir::*;
use crate::rules::{rewrite_stmts, TransformCtx, Transformer};
use std::collections::HashMap;

// --------------------------------------------------------------------------
// SingletonHashMapToValue (Section 3.2.2)
// --------------------------------------------------------------------------

/// Collapses aggregation maps whose every update uses a constant key into
/// a single global slot (Section 3.2.2; Q6's `"Total"` key).
pub struct SingletonHashMapToValue;

impl Transformer for SingletonHashMapToValue {
    fn name(&self) -> &'static str {
        "SingletonHashMapToValue"
    }

    fn run(&self, prog: Program, _ctx: &mut TransformCtx<'_>) -> Program {
        // An aggregation map whose every update uses a constant key is a
        // single global aggregate (e.g. Q6's key "Total").
        let mut constant_key: HashMap<Sym, bool> = HashMap::new();
        prog.walk(&mut |s| {
            if let Stmt::AggUpdate { map, key, .. } = s {
                let is_const = matches!(key, Expr::Int(_) | Expr::Str(_) | Expr::Bool(_));
                *constant_key.entry(*map).or_insert(true) &= is_const;
            }
        });
        rewrite_stmts(prog, &|s| match s {
            Stmt::AggMapNew { sym, key, naggs, store: AggStoreKind::GenericHashMap, hoisted }
                if constant_key.get(sym).copied().unwrap_or(false) =>
            {
                Some(vec![Stmt::AggMapNew {
                    sym: *sym,
                    key: key.clone(),
                    naggs: *naggs,
                    store: AggStoreKind::SingleValue,
                    hoisted: *hoisted,
                }])
            }
            _ => None,
        })
    }
}
