//! Parallelize: derives the morsel-driven parallelism degree per query.
//!
//! The paper's generated C executes queries single-threaded; this opt-in
//! transformer extends the same compiler-decides/executor-obeys discipline to
//! intra-query parallelism. It inspects the fully inlined program for
//! top-level relation-scanning loops (the pipelines the specialized engine
//! can cut into morsels: sequential scans, tiled scans, date-index scans)
//! and, when at least one exists, records the requested worker-thread degree
//! in the [`Specialization`](legobase_engine::Specialization) report. A
//! query with nothing morsel-partitionable (in practice only degenerate
//! plans — every TPC-H query scans a relation) is pinned to serial
//! execution.
//!
//! The transformer only *decides*; the mechanics — fixed-size morsels over
//! the shared columns, per-morsel partial states, deterministic merge in
//! morsel order — live in `legobase_engine::specialized` and are documented
//! in DESIGN.md §3.

use crate::ir::{Program, Stmt};
use crate::rules::{TransformCtx, Transformer};

/// Decides the per-query morsel-driven parallelism degree and records it in
/// the specialization report (a comment marks the decision in the lowered
/// program and the generated C).
pub struct Parallelize;

impl Transformer for Parallelize {
    fn name(&self) -> &'static str {
        "Parallelize"
    }

    fn run(&self, prog: Program, ctx: &mut TransformCtx<'_>) -> Program {
        let requested = ctx.settings.parallelism.max(1);
        let mut scans = 0usize;
        prog.walk(&mut |s| {
            if matches!(
                s,
                Stmt::ScanLoop { .. } | Stmt::TiledScanLoop { .. } | Stmt::DateIndexLoop { .. }
            ) {
                scans += 1;
            }
        });
        let degree = if scans > 0 { requested } else { 1 };
        ctx.spec.parallelism = degree;
        if degree > 1 {
            let mut stmts =
                vec![Stmt::Comment(format!("morsel-driven parallel execution, degree {degree}"))];
            stmts.extend(prog.stmts);
            return Program { stmts, ..prog };
        }
        prog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::compile;
    use legobase_engine::Settings;

    #[test]
    fn records_requested_degree_for_scanning_queries() {
        let cat = legobase_tpch::catalog();
        for n in [1usize, 6, 12] {
            let q = legobase_queries::query(&cat, n);
            let result = compile(&q, &cat, &Settings::optimized().with_parallelism(4));
            assert_eq!(result.spec.parallelism, 4, "Q{n} should parallelize");
            assert!(
                result.c_source.contains("morsel-driven parallel execution, degree 4"),
                "Q{n}: decision comment missing from generated C"
            );
        }
    }

    #[test]
    fn serial_request_stays_serial_and_unmarked() {
        let cat = legobase_tpch::catalog();
        let q = legobase_queries::query(&cat, 6);
        let result = compile(&q, &cat, &Settings::optimized());
        assert_eq!(result.spec.parallelism, 1);
        assert!(!result.c_source.contains("morsel-driven"));
        // The serial pipeline does not even include the phase.
        assert!(!result.trace.iter().any(|t| t.name == "Parallelize"));
    }

    #[test]
    fn scanless_program_pinned_to_serial() {
        let catalog = legobase_tpch::catalog();
        let q = legobase_queries::query(&catalog, 6);
        let settings = Settings::optimized().with_parallelism(8);
        let mut ctx = TransformCtx {
            catalog: &catalog,
            settings: &settings,
            query: &q,
            spec: Default::default(),
        };
        let empty = Program { stmts: Vec::new(), ..crate::build::build_ir(&q, &catalog) };
        let out = Parallelize.run(empty, &mut ctx);
        assert_eq!(ctx.spec.parallelism, 1);
        assert!(out.stmts.is_empty());
    }
}
