//! Parallelize: derives the morsel-driven parallelism decisions per query.
//!
//! The paper's generated C executes queries single-threaded; this opt-in
//! transformer extends the same compiler-decides/executor-obeys discipline to
//! intra-query parallelism. It inspects the fully inlined program for
//! top-level relation-scanning loops (the pipelines the specialized engine
//! can cut into morsels: sequential scans, tiled scans, date-index scans)
//! and, when at least one exists, records the requested worker-thread degree
//! in the [`Specialization`](legobase_engine::Specialization) report. A
//! query with nothing morsel-partitionable (in practice only degenerate
//! plans — every TPC-H query scans a relation) is pinned to serial
//! execution.
//!
//! Beyond the degree, the transformer also learns **which join and sort
//! operators are safe to parallelize** and records those clearances in the
//! report (`parallel_joins` / `parallel_sorts`). Join structures — generic
//! multi-maps, their lowered bucket-array forms, and partitioned Fig. 10
//! lookups — are key-partitionable by construction, so every one found in a
//! parallelizable program is cleared for the radix-partitioned build and the
//! morsel-parallel probe. A sort is cleared when it actually orders by keys
//! (a keyless `SortEmitted` is a no-op the executor never parallelizes).
//!
//! The transformer only *decides*; the mechanics — fixed-size morsels over
//! the shared columns, per-morsel partial states, deterministic merge in
//! morsel order, key-disjoint join sub-tables, the tie-toward-earlier-run
//! k-way sort merge — live in `legobase_engine::specialized` and
//! `legobase_storage::{morsel, partition}`, documented in DESIGN.md §3.

use crate::ir::{Program, Stmt};
use crate::rules::{TransformCtx, Transformer};

/// Decides the per-query morsel-driven parallelism degree plus the join/sort
/// clearances and records them in the specialization report (a comment marks
/// the decisions in the lowered program and the generated C).
pub struct Parallelize;

impl Transformer for Parallelize {
    fn name(&self) -> &'static str {
        "Parallelize"
    }

    fn run(&self, prog: Program, ctx: &mut TransformCtx<'_>) -> Program {
        let requested = ctx.settings.parallelism.max(1);
        let mut scans = 0usize;
        let mut joins = 0usize;
        let mut sorts = 0usize;
        prog.walk(&mut |s| match s {
            Stmt::ScanLoop { .. } | Stmt::TiledScanLoop { .. } | Stmt::DateIndexLoop { .. } => {
                scans += 1;
            }
            // Join tables in every lowering state: the generic multi-map,
            // its chained bucket-array form, and the load-time-partition
            // dereference that replaces both.
            Stmt::MultiMapNew { .. }
            | Stmt::BucketArrayNew { .. }
            | Stmt::PartitionLookupLoop { .. } => joins += 1,
            Stmt::SortEmitted { keys } if !keys.is_empty() => sorts += 1,
            _ => {}
        });
        let degree = if scans > 0 { requested } else { 1 };
        ctx.spec.parallelism = degree;
        ctx.spec.parallel_joins = if degree > 1 { joins } else { 0 };
        ctx.spec.parallel_sorts = if degree > 1 { sorts } else { 0 };
        if degree > 1 {
            let mut banner = format!("morsel-driven parallel execution, degree {degree}");
            if joins > 0 || sorts > 0 {
                banner.push_str(&format!(" ({joins} partitioned join(s), {sorts} merge sort(s))"));
            }
            let mut stmts = vec![Stmt::Comment(banner)];
            stmts.extend(prog.stmts);
            return Program { stmts, ..prog };
        }
        prog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::compile;
    use legobase_engine::Settings;

    #[test]
    fn records_requested_degree_for_scanning_queries() {
        let cat = legobase_tpch::catalog();
        for n in [1usize, 6, 12] {
            let q = legobase_queries::query(&cat, n);
            let result = compile(&q, &cat, &Settings::optimized().with_parallelism(4));
            assert_eq!(result.spec.parallelism, 4, "Q{n} should parallelize");
            assert!(
                result.c_source.contains("morsel-driven parallel execution, degree 4"),
                "Q{n}: decision comment missing from generated C"
            );
        }
    }

    /// The transformer clears joins and sorts per query: join-heavy
    /// ORDER BY queries (Q3, Q10, Q12) get both; Q1 sorts but joins
    /// nothing; Q6 is a pure scan→aggregate with neither.
    #[test]
    fn records_join_and_sort_clearances_per_query() {
        let cat = legobase_tpch::catalog();
        let compiled = |n: usize| {
            compile(
                &legobase_queries::query(&cat, n),
                &cat,
                &Settings::optimized().with_parallelism(4),
            )
        };
        for n in [3usize, 10, 12] {
            let result = compiled(n);
            assert!(result.spec.parallel_joins > 0, "Q{n} must clear its joins");
            assert!(result.spec.parallel_sorts > 0, "Q{n} must clear its sort");
            assert!(
                result.c_source.contains("partitioned join(s)"),
                "Q{n}: join clearance missing from the generated-C banner"
            );
        }
        let q1 = compiled(1);
        assert_eq!(q1.spec.parallel_joins, 0, "Q1 has no join");
        assert!(q1.spec.parallel_sorts > 0, "Q1 orders by returnflag/linestatus");
        let q6 = compiled(6);
        assert_eq!(q6.spec.parallel_joins, 0);
        assert_eq!(q6.spec.parallel_sorts, 0);
    }

    #[test]
    fn serial_request_stays_serial_and_unmarked() {
        let cat = legobase_tpch::catalog();
        let q = legobase_queries::query(&cat, 6);
        let result = compile(&q, &cat, &Settings::optimized());
        assert_eq!(result.spec.parallelism, 1);
        assert_eq!(result.spec.parallel_joins, 0);
        assert_eq!(result.spec.parallel_sorts, 0);
        assert!(!result.c_source.contains("morsel-driven"));
        // The serial pipeline does not even include the phase.
        assert!(!result.trace.iter().any(|t| t.name == "Parallelize"));
    }

    #[test]
    fn scanless_program_pinned_to_serial() {
        let catalog = legobase_tpch::catalog();
        let q = legobase_queries::query(&catalog, 6);
        let settings = Settings::optimized().with_parallelism(8);
        let mut ctx = TransformCtx {
            catalog: &catalog,
            settings: &settings,
            query: &q,
            spec: Default::default(),
        };
        let empty = Program { stmts: Vec::new(), ..crate::build::build_ir(&q, &catalog) };
        let out = Parallelize.run(empty, &mut ctx);
        assert_eq!(ctx.spec.parallelism, 1);
        assert!(out.stmts.is_empty());
    }
}
