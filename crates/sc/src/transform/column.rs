//! ColumnStore (Section 3.3) + unused-field removal (Section 3.6.1):
//! array-of-records becomes record-of-arrays; unreferenced attributes are
//! never loaded.
use crate::ir::*;
use crate::rules::{TransformCtx, Transformer};
use std::collections::HashMap;

// --------------------------------------------------------------------------
// ColumnStore (Section 3.3) + unused-field removal (Section 3.6.1)
// --------------------------------------------------------------------------

/// Row→column layout change (Section 3.3, Fig. 13) plus unused-field
/// removal (Section 3.6.1): field accesses on base rows become direct
/// column-vector loads, and unreferenced attributes are never loaded.
pub struct ColumnStore;

impl Transformer for ColumnStore {
    fn name(&self) -> &'static str {
        "ColumnStore"
    }

    fn run(&self, prog: Program, ctx: &mut TransformCtx<'_>) -> Program {
        // ---- analysis: referenced attributes per base table (the same
        // analysis powers unused-field removal).
        let used = legobase_engine::plan::used_base_columns(ctx.query, &|t: &str| {
            ctx.catalog.table(t).schema.clone()
        });
        for (table, cols) in used {
            ctx.spec.used_columns.entry(table).or_default().extend(cols.iter().copied());
        }
        for cols in ctx.spec.used_columns.values_mut() {
            cols.sort_unstable();
            cols.dedup();
        }

        // ---- IR rewriting: row-field access on base rows becomes a direct
        // column-vector load (array of records → record of arrays, Fig. 13).
        fn rewrite_with_env(stmts: &[Stmt], env: &mut HashMap<Sym, String>) -> Vec<Stmt> {
            let mut out = Vec::with_capacity(stmts.len());
            for s in stmts {
                // Extend the environment for loops that bind base rows.
                let bound = match s {
                    Stmt::ScanLoop { row, table, .. } if !table.starts_with('#') => {
                        Some((*row, table.clone()))
                    }
                    Stmt::DateIndexLoop { row, table, .. } => Some((*row, table.clone())),
                    Stmt::PartitionLookupLoop { row, table, .. } => Some((*row, table.clone())),
                    _ => None,
                };
                if let Some((r, t)) = &bound {
                    env.insert(*r, t.clone());
                }
                let s2 = s.map_bodies(&|b| rewrite_with_env(b, &mut env.clone()));
                let env2 = env.clone();
                let s3 = s2.map_exprs(&|e| match e {
                    Expr::Field(r, f) => env2.get(r).map(|t| Expr::ColumnLoad {
                        table: t.clone(),
                        column: f.clone(),
                        idx: *r,
                    }),
                    _ => None,
                });
                out.push(s3);
            }
            out
        }
        let stmts = rewrite_with_env(&prog.stmts, &mut HashMap::new());
        Program { stmts, ..prog }
    }
}
