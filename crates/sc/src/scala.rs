//! Scala-like rendering of IR programs.
//!
//! SC "is not particularly aware of C and can be used to generate programs
//! in other languages as well (e.g. optimized Scala)" (footnote 6 of the
//! paper). This backend stringifies any IR level — including the *high*
//! levels — so the progressive lowering of Fig. 7 can be displayed stage by
//! stage (see the `compiler_pipeline` example).

use crate::ir::{AggOp, AggStoreKind, BinOp, Expr, Program, Stmt, StrFn};
use std::fmt::Write;

/// Renders a program as Scala-like pseudo-code.
pub fn emit_scala(prog: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "def {}(): Unit = {{",
        prog.name.replace(|c: char| !c.is_alphanumeric(), "_")
    );
    emit_block(&mut out, &prog.stmts, 1);
    out.push_str("}\n");
    out
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn emit_block(out: &mut String, stmts: &[Stmt], indent: usize) {
    for s in stmts {
        emit_stmt(out, s, indent);
    }
}

fn emit_stmt(out: &mut String, s: &Stmt, indent: usize) {
    pad(out, indent);
    match s {
        Stmt::Comment(c) => {
            let _ = writeln!(out, "// {c}");
        }
        Stmt::Let { sym, value, .. } => {
            let _ = writeln!(out, "val {sym} = {}", expr(value));
        }
        Stmt::Var { sym, init, .. } => {
            let _ = writeln!(out, "var {sym} = {}", expr(init));
        }
        Stmt::Assign { sym, value } => {
            let _ = writeln!(out, "{sym} = {}", expr(value));
        }
        Stmt::If { cond, then_b, else_b } => {
            let _ = writeln!(out, "if ({}) {{", expr(cond));
            emit_block(out, then_b, indent + 1);
            if else_b.is_empty() {
                pad(out, indent);
                out.push_str("}\n");
            } else {
                pad(out, indent);
                out.push_str("} else {\n");
                emit_block(out, else_b, indent + 1);
                pad(out, indent);
                out.push_str("}\n");
            }
        }
        Stmt::ScanLoop { row, table, body } => {
            let _ = writeln!(out, "for ({row} <- {}) {{", table.replace('#', "stage_"));
            emit_block(out, body, indent + 1);
            pad(out, indent);
            out.push_str("}\n");
        }
        Stmt::TiledScanLoop { row, table, tile, body } => {
            let _ = writeln!(
                out,
                "for (block <- {}.grouped({tile}); {row} <- block) {{ // tiled (Sec. 3.6.3)",
                table.replace('#', "stage_")
            );
            emit_block(out, body, indent + 1);
            pad(out, indent);
            out.push_str("}\n");
        }
        Stmt::DateIndexLoop { row, table, column, lo, hi, body } => {
            let _ = writeln!(
                out,
                "for ({row} <- dateIndex({table}.{column}).range({lo}, {hi})) {{ // Fig. 12"
            );
            emit_block(out, body, indent + 1);
            pad(out, indent);
            out.push_str("}\n");
        }
        Stmt::MultiMapNew { sym, key } => {
            let note = match (&key.table, &key.column) {
                (Some(t), Some(c)) => format!(" // keyed by {t}.{c}"),
                _ => String::new(),
            };
            let _ = writeln!(out, "val {sym} = new MultiMap[Int, Record]{note}");
        }
        Stmt::MultiMapInsert { map, key, row } => {
            let _ = writeln!(out, "{map}.addBinding({}, {row})", expr(key));
        }
        Stmt::MultiMapLookup { map, key, row, body } => {
            let _ = writeln!(out, "{map}.get({}).foreach {{ {row} =>", expr(key));
            emit_block(out, body, indent + 1);
            pad(out, indent);
            out.push_str("}\n");
        }
        Stmt::PartitionLookupLoop { table, column, key, row, body } => {
            let _ = writeln!(
                out,
                "for ({row} <- partition_{table}_{column}({})) {{ // Fig. 10",
                expr(key)
            );
            emit_block(out, body, indent + 1);
            pad(out, indent);
            out.push_str("}\n");
        }
        Stmt::BucketArrayNew { sym, hoisted, .. } => {
            let note = if *hoisted { " // pool hoisted to load time" } else { "" };
            let _ = writeln!(out, "val {sym} = new Array[Record](BUCKETSZ){note} // Fig. 7e");
        }
        Stmt::BucketArrayInsert { arr, key, row } => {
            let _ = writeln!(out, "{row}.next = {arr}(h({})); {arr}(h({0})) = {row}", expr(key));
        }
        Stmt::BucketArrayLookup { arr, key, row, body } => {
            let _ = writeln!(out, "var {row} = {arr}(h({})); while ({row} != null) {{", expr(key));
            emit_block(out, body, indent + 1);
            pad(out, indent + 1);
            let _ = writeln!(out, "{row} = {row}.next");
            pad(out, indent);
            out.push_str("}\n");
        }
        Stmt::AggMapNew { sym, naggs, store, .. } => {
            let repr = match store {
                AggStoreKind::GenericHashMap => format!("new HashMap[K, Array[Double]]({naggs})"),
                AggStoreKind::LoweredArray => {
                    format!("new Array[Array[Double]](BUCKETSZ) /* {naggs} aggs, lowered */")
                }
                AggStoreKind::DirectArray => {
                    format!("Array.fill(DOMAIN)(zeros({naggs})) /* pre-initialized, Sec. 3.5.2 */")
                }
                AggStoreKind::SingleValue => "0.0 /* singleton map → value */".to_string(),
            };
            let _ = writeln!(out, "val {sym} = {repr}");
        }
        Stmt::AggUpdate { map, key, updates } => {
            let _ = writeln!(out, "val aggs = {map}.getOrElseUpdate({}, zeros)", expr(key));
            for (i, (op, e)) in updates.iter().enumerate() {
                pad(out, indent);
                let upd = match op {
                    AggOp::SumF | AggOp::SumI => format!("aggs({i}) += {}", expr(e)),
                    AggOp::Count => format!("aggs({i}) += 1"),
                    AggOp::Min => format!("aggs({i}) = min(aggs({i}), {})", expr(e)),
                    AggOp::Max => format!("aggs({i}) = max(aggs({i}), {})", expr(e)),
                };
                let _ = writeln!(out, "{upd}");
            }
        }
        Stmt::AggForeach { map, key_sym, aggs_sym, body } => {
            let _ = writeln!(out, "{map}.foreach {{ case ({key_sym}, {aggs_sym}) =>");
            emit_block(out, body, indent + 1);
            pad(out, indent);
            out.push_str("}\n");
        }
        Stmt::Emit { values } => {
            let vals: Vec<String> = values.iter().map(expr).collect();
            let _ = writeln!(out, "emit({})", vals.join(", "));
        }
        Stmt::SortEmitted { keys } => {
            let _ = writeln!(out, "sortBuffer({keys:?})");
        }
        Stmt::LimitEmitted { n } => {
            let _ = writeln!(out, "limitBuffer({n})");
        }
    }
}

fn expr(e: &Expr) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Float(v) => format!("{v}"),
        Expr::Bool(b) => b.to_string(),
        Expr::Str(s) => format!("{s:?}"),
        Expr::Date(d) => format!("date({d})"),
        Expr::Sym(s) => s.to_string(),
        Expr::Field(r, f) => format!("{r}.{f}"),
        Expr::ColumnLoad { table, column, idx } => format!("{table}_{column}({idx})"),
        Expr::Bin(op, a, b) => format!("({} {} {})", expr(a), scala_op(*op), expr(b)),
        Expr::Not(a) => format!("(!{})", expr(a)),
        Expr::StrOp(f, a, lit) => format!("{}.{}({lit:?})", expr(a), strfn(*f)),
        Expr::DictOp { op, code, lit } => {
            format!("dict_{}({}, {lit:?}) /* int op, Table II */", strfn(*op), expr(code))
        }
        Expr::YearOf(a) => format!("{}.year", expr(a)),
        Expr::Call(name, args) => {
            let rendered: Vec<String> = args.iter().map(expr).collect();
            format!("{name}({})", rendered.join(", "))
        }
    }
}

fn scala_op(op: BinOp) -> &'static str {
    match op {
        BinOp::BitAnd => "&",
        other => other.c_token(),
    }
}

fn strfn(f: StrFn) -> &'static str {
    match f {
        StrFn::Eq => "equals",
        StrFn::Ne => "notEquals",
        StrFn::StartsWith => "startsWith",
        StrFn::EndsWith => "endsWith",
        StrFn::Contains => "contains",
        StrFn::WordSeq => "indexOfSlice",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;
    use legobase_engine::{Config, Settings};

    #[test]
    fn high_level_stage_reads_like_fig7c() {
        let cat = legobase_tpch::catalog();
        let q = legobase_queries::query(&cat, 12);
        // Stage 0 = the operator-inlined program before any lowering.
        let result = Pipeline::for_settings(&Config::NaiveC.settings()).run(
            &q,
            &cat,
            &Config::NaiveC.settings(),
        );
        let scala = emit_scala(&result.stages[0]);
        assert!(scala.contains("new MultiMap[Int, Record]"), "{scala}");
        assert!(scala.contains(".addBinding("));
        assert!(scala.contains("getOrElseUpdate"));
        assert!(scala.contains("for ("));
    }

    #[test]
    fn lowered_stage_shows_specialized_structures() {
        let cat = legobase_tpch::catalog();
        let q = legobase_queries::query(&cat, 12);
        let settings = Settings::optimized();
        let result = Pipeline::for_settings(&settings).run(&q, &cat, &settings);
        let scala = emit_scala(&result.program);
        assert!(scala.contains("partition_"), "partitioned access expected:\n{scala}");
        assert!(scala.contains("dict_"), "dictionary int ops expected");
        assert!(!scala.contains("new MultiMap"), "no generic multimap after lowering");
    }

    #[test]
    fn every_query_renders_at_every_stage() {
        let cat = legobase_tpch::catalog();
        let settings = Settings::optimized();
        for q in legobase_queries::all_queries(&cat) {
            let result = Pipeline::for_settings(&settings).run(&q, &cat, &settings);
            for stage in &result.stages {
                let text = emit_scala(stage);
                assert!(text.lines().count() >= 3, "{}: degenerate rendering", q.name);
            }
        }
    }
}
