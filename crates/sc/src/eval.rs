//! A reference evaluator for the scalar subset of the IR.
//!
//! Transformations must preserve semantics; this evaluator executes
//! straight-line scalar programs (`Let`/`Var`/`Assign`/`If` over arithmetic,
//! comparison, and boolean expressions) so the cleanup passes (constant
//! folding, scalar replacement, DCE) can be property-tested: for random
//! programs, the environment of live variables after transformation must
//! equal the original.
//!
//! [`eval_with_tables`] extends the subset with scan loops over synthetic
//! relations (rows are field→value maps), which lets the loop-shape
//! transformers — horizontal fusion, field promotion, tiling — be
//! property-tested the same way: random loops over random tables must
//! compute the same accumulators and emit the same tuples after the pass.

use crate::ir::{BinOp, Expr, Program, Stmt, Sym};
use std::collections::HashMap;

/// Synthetic relations for loop evaluation: table name → rows, each row a
/// field→value map.
pub type Tables = HashMap<String, Vec<HashMap<String, V>>>;

/// Result of [`eval_with_tables`]: the final scalar environment plus the
/// emitted tuples in emission order.
pub type LoopEvalResult = (HashMap<Sym, V>, Vec<Vec<V>>);

/// A scalar runtime value.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum V {
    /// Integer.
    I(i64),
    /// Float.
    F(f64),
    /// Boolean.
    B(bool),
}

impl V {
    fn as_f(self) -> f64 {
        match self {
            V::I(v) => v as f64,
            V::F(v) => v,
            V::B(b) => b as i64 as f64,
        }
    }

    fn as_b(self) -> bool {
        match self {
            V::B(b) => b,
            V::I(v) => v != 0,
            V::F(v) => v != 0.0,
        }
    }
}

/// Evaluates a scalar expression in an environment.
pub fn eval_expr(e: &Expr, env: &HashMap<Sym, V>) -> Option<V> {
    eval_expr_rows(e, env, &HashMap::new())
}

/// Like [`eval_expr`], additionally resolving `Field` reads against the
/// current row bindings of enclosing loops.
pub fn eval_expr_rows(
    e: &Expr,
    env: &HashMap<Sym, V>,
    rows: &HashMap<Sym, HashMap<String, V>>,
) -> Option<V> {
    Some(match e {
        Expr::Int(v) => V::I(*v),
        Expr::Float(v) => V::F(*v),
        Expr::Bool(b) => V::B(*b),
        Expr::Date(d) => V::I(*d as i64),
        Expr::Sym(s) => *env.get(s)?,
        Expr::Field(r, f) => *rows.get(r)?.get(f)?,
        Expr::ColumnLoad { column, idx, .. } => *rows.get(idx)?.get(column)?,
        Expr::Not(a) => V::B(!eval_expr_rows(a, env, rows)?.as_b()),
        Expr::Bin(op, a, b) => {
            let (va, vb) = (eval_expr_rows(a, env, rows)?, eval_expr_rows(b, env, rows)?);
            match op {
                BinOp::And => V::B(va.as_b() && vb.as_b()),
                BinOp::Or => V::B(va.as_b() || vb.as_b()),
                BinOp::BitAnd => V::B(va.as_b() & vb.as_b()),
                BinOp::Eq => V::B(va.as_f() == vb.as_f()),
                BinOp::Ne => V::B(va.as_f() != vb.as_f()),
                BinOp::Lt => V::B(va.as_f() < vb.as_f()),
                BinOp::Le => V::B(va.as_f() <= vb.as_f()),
                BinOp::Gt => V::B(va.as_f() > vb.as_f()),
                BinOp::Ge => V::B(va.as_f() >= vb.as_f()),
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => match (va, vb) {
                    (V::I(x), V::I(y)) => match op {
                        BinOp::Add => V::I(x.wrapping_add(y)),
                        BinOp::Sub => V::I(x.wrapping_sub(y)),
                        BinOp::Mul => V::I(x.wrapping_mul(y)),
                        BinOp::Div => {
                            if y == 0 {
                                return None;
                            }
                            V::I(x.wrapping_div(y))
                        }
                        _ => unreachable!(),
                    },
                    _ => {
                        let (x, y) = (va.as_f(), vb.as_f());
                        match op {
                            BinOp::Add => V::F(x + y),
                            BinOp::Sub => V::F(x - y),
                            BinOp::Mul => V::F(x * y),
                            BinOp::Div => V::F(x / y),
                            _ => unreachable!(),
                        }
                    }
                },
            }
        }
        Expr::YearOf(a) => {
            let d = eval_expr_rows(a, env, rows)?;
            V::I(legobase_storage::Date(d.as_f() as i32).year() as i64)
        }
        // Collection/record expressions are outside the scalar subset.
        _ => return None,
    })
}

/// Executes the scalar subset of a program, returning the final environment.
/// Returns `None` if the program leaves the scalar subset.
pub fn eval_scalar(prog: &Program) -> Option<HashMap<Sym, V>> {
    let mut env = HashMap::new();
    exec_block(&prog.stmts, &mut env)?;
    Some(env)
}

/// Executes the scalar-plus-loops subset over synthetic tables, returning
/// the final environment and the emitted tuples in emission order. Returns
/// `None` if the program leaves the subset (collections, calls) or scans a
/// table not present in `tables`.
pub fn eval_with_tables(prog: &Program, tables: &Tables) -> Option<LoopEvalResult> {
    let mut env = HashMap::new();
    let mut rows = HashMap::new();
    let mut emitted = Vec::new();
    exec_block_t(&prog.stmts, &mut env, &mut rows, tables, &mut emitted)?;
    Some((env, emitted))
}

fn exec_block_t(
    stmts: &[Stmt],
    env: &mut HashMap<Sym, V>,
    rows: &mut HashMap<Sym, HashMap<String, V>>,
    tables: &Tables,
    emitted: &mut Vec<Vec<V>>,
) -> Option<()> {
    for s in stmts {
        match s {
            Stmt::Comment(_) => {}
            Stmt::Let { sym, value, .. } | Stmt::Var { sym, init: value, .. } => {
                let v = eval_expr_rows(value, env, rows)?;
                env.insert(*sym, v);
            }
            Stmt::Assign { sym, value } => {
                let v = eval_expr_rows(value, env, rows)?;
                env.insert(*sym, v);
            }
            Stmt::If { cond, then_b, else_b } => {
                if eval_expr_rows(cond, env, rows)?.as_b() {
                    exec_block_t(then_b, env, rows, tables, emitted)?;
                } else {
                    exec_block_t(else_b, env, rows, tables, emitted)?;
                }
            }
            Stmt::Emit { values } => {
                let row = values
                    .iter()
                    .map(|v| eval_expr_rows(v, env, rows))
                    .collect::<Option<Vec<V>>>()?;
                emitted.push(row);
            }
            // A tiled scan visits the same rows in the same order as the
            // plain scan — tiling must be observationally invisible.
            Stmt::ScanLoop { row, table, body } | Stmt::TiledScanLoop { row, table, body, .. } => {
                let data = tables.get(table)?;
                for r in data {
                    rows.insert(*row, r.clone());
                    exec_block_t(body, env, rows, tables, emitted)?;
                }
                rows.remove(row);
            }
            _ => return None, // outside the loop subset
        }
    }
    Some(())
}

fn exec_block(stmts: &[Stmt], env: &mut HashMap<Sym, V>) -> Option<()> {
    for s in stmts {
        match s {
            Stmt::Comment(_) => {}
            Stmt::Let { sym, value, .. } | Stmt::Var { sym, init: value, .. } => {
                let v = eval_expr(value, env)?;
                env.insert(*sym, v);
            }
            Stmt::Assign { sym, value } => {
                let v = eval_expr(value, env)?;
                env.insert(*sym, v);
            }
            Stmt::If { cond, then_b, else_b } => {
                if eval_expr(cond, env)?.as_b() {
                    exec_block(then_b, env)?;
                } else {
                    exec_block(else_b, env)?;
                }
            }
            Stmt::Emit { values } => {
                for v in values {
                    eval_expr(v, env)?;
                }
            }
            _ => return None, // outside the scalar subset
        }
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Ty;
    use crate::transform::{
        common_subexpression_eliminate, constant_fold, dead_code_eliminate, scalar_replace,
    };
    use proptest::prelude::*;

    fn lit_i(v: i64) -> Expr {
        Expr::Int(v)
    }

    #[test]
    fn evaluator_basics() {
        let mut p = Program { name: "t".into(), stmts: vec![], next_sym: 0 };
        let a = p.fresh();
        let b = p.fresh();
        p.stmts = vec![
            Stmt::Let { sym: a, ty: Ty::I64, value: lit_i(4) },
            Stmt::Var { sym: b, ty: Ty::I64, init: Expr::bin(BinOp::Mul, Expr::sym(a), lit_i(3)) },
            Stmt::If {
                cond: Expr::bin(BinOp::Gt, Expr::sym(b), lit_i(10)),
                then_b: vec![Stmt::Assign { sym: b, value: lit_i(10) }],
                else_b: vec![],
            },
        ];
        let env = eval_scalar(&p).unwrap();
        assert_eq!(env[&b], V::I(10));
        assert_eq!(env[&a], V::I(4));
    }

    /// Strategy: random scalar straight-line programs over a few symbols.
    fn arb_expr(depth: u32, nsyms: u32) -> BoxedStrategy<Expr> {
        let leaf = prop_oneof![
            (-50i64..50).prop_map(Expr::Int),
            (0u32..nsyms).prop_map(|s| Expr::sym(Sym(s))),
            any::<bool>().prop_map(Expr::Bool),
        ];
        leaf.prop_recursive(depth, 24, 2, |inner| {
            (inner.clone(), inner, 0usize..8).prop_map(|(a, b, op)| {
                let ops = [
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Eq,
                    BinOp::Ne,
                    BinOp::Lt,
                    BinOp::And,
                    BinOp::Or,
                ];
                Expr::bin(ops[op], a, b)
            })
        })
        .boxed()
    }

    fn arb_program() -> impl Strategy<Value = Program> {
        // Symbols 0..4 are pre-seeded; statements define 4..12.
        proptest::collection::vec((4u32..12, arb_expr(3, 4), any::<bool>()), 1..10).prop_map(
            |defs| {
                let mut stmts: Vec<Stmt> = (0..4)
                    .map(|i| Stmt::Var { sym: Sym(i), ty: Ty::I64, init: Expr::Int(i as i64 + 1) })
                    .collect();
                for (sym, e, cond) in defs {
                    if cond {
                        stmts.push(Stmt::If {
                            cond: e.clone(),
                            then_b: vec![Stmt::Assign { sym: Sym(sym % 4), value: Expr::Int(9) }],
                            else_b: vec![],
                        });
                    }
                    stmts.push(Stmt::Let { sym: Sym(sym + 100), ty: Ty::I64, value: e });
                }
                // Emit the observable variables so DCE cannot remove them.
                stmts.push(Stmt::Emit { values: (0..4).map(|i| Expr::sym(Sym(i))).collect() });
                Program { name: "prop".into(), stmts, next_sym: 200 }
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Constant folding, scalar replacement, and DCE preserve the values
        /// of the observable (emitted) variables.
        #[test]
        fn cleanup_passes_preserve_semantics(p in arb_program()) {
            let original = eval_scalar(&p);
            prop_assume!(original.is_some());
            let original = original.unwrap();
            for (name, transformed) in [
                ("fold", constant_fold(p.clone())),
                ("cse", common_subexpression_eliminate(p.clone())),
                ("scalar", scalar_replace(p.clone())),
                ("dce", dead_code_eliminate(p.clone())),
                (
                    "all",
                    dead_code_eliminate(scalar_replace(common_subexpression_eliminate(
                        constant_fold(p.clone()),
                    ))),
                ),
            ] {
                let after = eval_scalar(&transformed)
                    .unwrap_or_else(|| panic!("{name} left scalar subset"));
                // Observable symbols: the pre-seeded vars 0..4.
                for i in 0..4u32 {
                    prop_assert_eq!(
                        after.get(&Sym(i)),
                        original.get(&Sym(i)),
                        "{} changed x{}", name, i
                    );
                }
            }
        }

        /// DCE only ever removes statements.
        #[test]
        fn dce_never_grows(p in arb_program()) {
            prop_assert!(dead_code_eliminate(p.clone()).size() <= p.size());
        }
    }

    // ---- loop-shape transformers over synthetic tables --------------------

    /// A loop body: fold an expression over a field of the row into an
    /// accumulator, optionally guarded, optionally emitting.
    #[derive(Clone, Debug)]
    struct LoopSpec {
        acc: u32,
        field: &'static str,
        guarded: bool,
        emits: bool,
    }

    fn arb_loop() -> impl Strategy<Value = LoopSpec> {
        (0u32..4, 0usize..2, any::<bool>(), any::<bool>()).prop_map(|(acc, f, guarded, emits)| {
            LoopSpec { acc, field: ["l_quantity", "l_tax"][f], guarded, emits }
        })
    }

    /// Builds a program of accumulator loops over the `lineitem` table.
    /// Loops that touch the same accumulator are flow-dependent; fusion must
    /// leave them alone, and everything it does fuse must be invisible.
    fn loops_program(specs: &[LoopSpec]) -> Program {
        let mut stmts: Vec<Stmt> = (0..4)
            .map(|i| Stmt::Var { sym: Sym(i), ty: Ty::F64, init: Expr::Float(0.0) })
            .collect();
        for (i, spec) in specs.iter().enumerate() {
            let row = Sym(100 + i as u32);
            let acc = Sym(spec.acc);
            let update = Stmt::Assign {
                sym: acc,
                value: Expr::bin(BinOp::Add, Expr::sym(acc), Expr::Field(row, spec.field.into())),
            };
            let mut body = vec![if spec.guarded {
                Stmt::If {
                    cond: Expr::bin(
                        BinOp::Lt,
                        Expr::Field(row, "l_quantity".into()),
                        Expr::Float(24.0),
                    ),
                    then_b: vec![update],
                    else_b: vec![],
                }
            } else {
                update
            }];
            if spec.emits {
                body.push(Stmt::Emit { values: vec![Expr::Field(row, spec.field.into())] });
            }
            stmts.push(Stmt::ScanLoop { row, table: "lineitem".into(), body });
        }
        stmts.push(Stmt::Emit { values: (0..4).map(|i| Expr::sym(Sym(i))).collect() });
        Program { name: "loops".into(), stmts, next_sym: 300 }
    }

    fn arb_table() -> impl Strategy<Value = Tables> {
        proptest::collection::vec((0.0f64..50.0, 0.0f64..0.09), 1..20).prop_map(|rows| {
            let rows = rows
                .into_iter()
                .map(|(q, t)| {
                    HashMap::from([
                        ("l_quantity".to_string(), V::F(q)),
                        ("l_tax".to_string(), V::F(t)),
                    ])
                })
                .collect();
            HashMap::from([("lineitem".to_string(), rows)])
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        /// Horizontal fusion preserves accumulators and the emitted tuple
        /// sequence for random loop nests over random tables.
        #[test]
        fn horizontal_fusion_preserves_semantics(
            specs in proptest::collection::vec(arb_loop(), 2..5),
            tables in arb_table(),
        ) {
            let p = loops_program(&specs);
            let original = eval_with_tables(&p, &tables).expect("in subset");
            let fused = crate::transform::horizontal_fuse(p.clone());
            prop_assert!(fused.size() <= p.size());
            let after = eval_with_tables(&fused, &tables).expect("fusion stays in subset");
            for i in 0..4u32 {
                prop_assert_eq!(after.0.get(&Sym(i)), original.0.get(&Sym(i)), "acc x{}", i);
            }
            prop_assert_eq!(&after.1, &original.1, "emitted tuples must match");
        }

        /// Field promotion and loop tiling — run after fusion, as in the
        /// pipeline — are also observationally invisible.
        #[test]
        fn promotion_and_tiling_preserve_semantics(
            specs in proptest::collection::vec(arb_loop(), 1..4),
            tables in arb_table(),
            tile in 1usize..8,
        ) {
            use crate::rules::{Transformer, TransformCtx};
            let catalog = legobase_tpch::catalog();
            let settings = legobase_engine::Settings::optimized();
            let query = legobase_engine::QueryPlan::new(
                "t",
                legobase_engine::plan::Plan::scan("lineitem"),
            );
            let mut ctx = TransformCtx {
                catalog: &catalog,
                settings: &settings,
                query: &query,
                spec: Default::default(),
            };
            let p = loops_program(&specs);
            let original = eval_with_tables(&p, &tables).expect("in subset");
            let promoted = crate::transform::FieldPromotion.run(p.clone(), &mut ctx);
            let tiled = crate::transform::LoopTiling { tile }.run(promoted, &mut ctx);
            let after = eval_with_tables(&tiled, &tables)
                .expect("promotion+tiling stay in subset");
            for i in 0..4u32 {
                prop_assert_eq!(after.0.get(&Sym(i)), original.0.get(&Sym(i)), "acc x{}", i);
            }
            prop_assert_eq!(&after.1, &original.1, "emitted tuples must match");
        }
    }
}
