//! The SC intermediate representation.
//!
//! A deliberately small, typed IR that spans the abstraction levels of the
//! paper's progressive lowering (Fig. 7): at the top it describes inlined
//! operator code over generic collections (`MultiMapNew`, `AggLookup`,
//! `ScanLoop`); transformers progressively replace those nodes with lowered
//! forms (`PartitionLookupLoop`, `BucketArray*`, `DateIndexLoop`, dictionary
//! integer comparisons, record-of-arrays field loads) until every remaining
//! node has a direct C rendering.
//!
//! Unlike LMS-style staging, symbols are explicit (`Sym`) and programs are
//! plain data — the whole point of the reproduction is that the IR is a
//! value that rules pattern-match on.

use std::fmt;

/// An SSA-ish symbol.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Sym(pub u32);

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// IR types.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Ty {
    /// 64-bit integer (`long` in the C rendering).
    I64,
    /// 64-bit float (`double`).
    F64,
    /// Boolean (`int` in C).
    Bool,
    /// String (`char*` before dictionary lowering).
    Str,
    /// Calendar date as a day count (`int`).
    Date,
    /// A tuple/record of a named relation or intermediate.
    Row(String),
    /// No value (statement position).
    Unit,
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::I64 => write!(f, "long"),
            Ty::F64 => write!(f, "double"),
            Ty::Bool => write!(f, "int"),
            Ty::Str => write!(f, "char*"),
            Ty::Date => write!(f, "int"),
            Ty::Row(r) => write!(f, "struct {r}*"),
            Ty::Unit => write!(f, "void"),
        }
    }
}

/// Binary operators (arithmetic, comparison, logic).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// Short-circuit `&&`.
    And,
    /// Short-circuit `||`.
    Or,
    /// Non-short-circuit `&` — produced by the fine-grained `x && y → x & y`
    /// optimization (Section 3.6.3).
    BitAnd,
}

impl BinOp {
    /// True for the six comparison operators.
    pub fn is_comparison(&self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }

    /// The operator's C token.
    pub fn c_token(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::BitAnd => "&",
        }
    }
}

/// String operations before dictionary lowering (Table II, left column).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StrFn {
    /// `equals` (C: `strcmp(x, y) == 0`).
    Eq,
    /// `notEquals` (C: `strcmp(x, y) != 0`).
    Ne,
    /// `startsWith` (C: `strncmp`).
    StartsWith,
    /// `endsWith`.
    EndsWith,
    /// `indexOfSlice` / substring containment (C: `strstr`).
    Contains,
    /// `indexOfSlice` on a two-word pattern.
    WordSeq,
}

/// IR expressions.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Boolean literal.
    Bool(bool),
    /// String literal.
    Str(String),
    /// A date literal as a day count.
    Date(i32),
    /// Reference to a bound symbol.
    Sym(Sym),
    /// Row-layout field access: `row.field`.
    Field(Sym, String),
    /// Column-layout field access: `table_field[idx]` — produced by the
    /// `ColumnStore` transformer from `Field`.
    ColumnLoad {
        /// Base relation owning the column vector.
        table: String,
        /// Attribute name.
        column: String,
        /// Row-index symbol.
        idx: Sym,
    },
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Boolean negation.
    Not(Box<Expr>),
    /// String operation on the raw representation.
    StrOp(StrFn, Box<Expr>, String),
    /// Dictionary-lowered string operation: integer comparison of the code
    /// against a constant or range resolved at load time (Table II, right
    /// column).
    DictOp {
        /// The original string operation being lowered.
        op: StrFn,
        /// Expression producing the dictionary code.
        code: Box<Expr>,
        /// The original pattern, kept for code generation.
        lit: String,
    },
    /// Extract the year of a date value.
    YearOf(Box<Expr>),
    /// Opaque call (hash functions, library shims) — survives to C verbatim.
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Shorthand for [`Expr::Sym`].
    pub fn sym(s: Sym) -> Expr {
        Expr::Sym(s)
    }

    /// Boxing constructor for [`Expr::Bin`].
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    /// Conjunction of many operands.
    pub fn conj(mut parts: Vec<Expr>) -> Expr {
        match parts.len() {
            0 => Expr::Bool(true),
            1 => parts.pop().expect("non-empty"),
            _ => {
                let first = parts.remove(0);
                parts.into_iter().fold(first, |a, b| Expr::bin(BinOp::And, a, b))
            }
        }
    }

    /// True if evaluating the expression has no side effects (everything in
    /// this IR is pure except `Call`).
    pub fn is_pure(&self) -> bool {
        match self {
            Expr::Call(..) => false,
            Expr::Bin(_, a, b) => a.is_pure() && b.is_pure(),
            Expr::Not(a) | Expr::YearOf(a) => a.is_pure(),
            Expr::StrOp(_, a, _) => a.is_pure(),
            Expr::DictOp { code, .. } => code.is_pure(),
            _ => true,
        }
    }

    /// Symbols referenced by this expression.
    pub fn syms(&self, out: &mut Vec<Sym>) {
        match self {
            Expr::Sym(s) | Expr::Field(s, _) => out.push(*s),
            Expr::ColumnLoad { idx, .. } => out.push(*idx),
            Expr::Bin(_, a, b) => {
                a.syms(out);
                b.syms(out);
            }
            Expr::Not(a) | Expr::YearOf(a) => a.syms(out),
            Expr::StrOp(_, a, _) => a.syms(out),
            Expr::DictOp { code, .. } => code.syms(out),
            Expr::Call(_, args) => {
                for a in args {
                    a.syms(out);
                }
            }
            _ => {}
        }
    }

    /// Visits every sub-expression (pre-order).
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Bin(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Not(a) | Expr::YearOf(a) => a.visit(f),
            Expr::StrOp(_, a, _) => a.visit(f),
            Expr::DictOp { code, .. } => code.visit(f),
            Expr::Call(_, args) => {
                for a in args {
                    a.visit(f);
                }
            }
            _ => {}
        }
    }

    /// Rewrites sub-expressions bottom-up through `f`.
    pub fn rewrite(&self, f: &impl Fn(&Expr) -> Option<Expr>) -> Expr {
        let rebuilt = match self {
            Expr::Bin(op, a, b) => Expr::bin(*op, a.rewrite(f), b.rewrite(f)),
            Expr::Not(a) => Expr::Not(Box::new(a.rewrite(f))),
            Expr::YearOf(a) => Expr::YearOf(Box::new(a.rewrite(f))),
            Expr::StrOp(op, a, p) => Expr::StrOp(*op, Box::new(a.rewrite(f)), p.clone()),
            Expr::DictOp { op, code, lit } => {
                Expr::DictOp { op: *op, code: Box::new(code.rewrite(f)), lit: lit.clone() }
            }
            Expr::Call(name, args) => {
                Expr::Call(name.clone(), args.iter().map(|a| a.rewrite(f)).collect())
            }
            other => other.clone(),
        };
        f(&rebuilt).unwrap_or(rebuilt)
    }
}

/// The kind of an aggregation slot (used by `AggUpdate`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AggOp {
    /// Sum of doubles.
    SumF,
    /// Sum of integers.
    SumI,
    /// Row count.
    Count,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// IR statements. High-level collection nodes are progressively replaced by
/// lowered forms; the C backend only accepts the lowered subset.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// `val sym = expr` — immutable binding.
    Let {
        /// Bound symbol.
        sym: Sym,
        /// Declared type.
        ty: Ty,
        /// Bound expression.
        value: Expr,
    },
    /// `var sym = expr` — mutable binding.
    Var {
        /// Bound symbol.
        sym: Sym,
        /// Declared type.
        ty: Ty,
        /// Initial value.
        init: Expr,
    },
    /// `sym = expr` — assignment to a `Var`.
    Assign {
        /// Assigned symbol.
        sym: Sym,
        /// New value.
        value: Expr,
    },
    /// Two-armed conditional.
    If {
        /// Branch condition.
        cond: Expr,
        /// Statements of the true branch.
        then_b: Vec<Stmt>,
        /// Statements of the false branch.
        else_b: Vec<Stmt>,
    },
    /// Sequential scan of a relation: `for (row <- table)`.
    ScanLoop {
        /// Row binder (fresh per loop).
        row: Sym,
        /// Relation (or `#stage` buffer) scanned.
        table: String,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// A tiled sequential scan (Section 3.6.3: "apply tiling to for loops
    /// whose range are known at compile time"). Produced from `ScanLoop`
    /// by the opt-in [`crate::transform::LoopTiling`] transformer; renders
    /// as a two-level blocked loop in C.
    TiledScanLoop {
        /// Row binder.
        row: Sym,
        /// Relation scanned.
        table: String,
        /// Block size.
        tile: usize,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Year-bucketed scan: produced by the date-index transformer from a
    /// `ScanLoop` whose body starts with a date range check (Fig. 12).
    DateIndexLoop {
        /// Row binder.
        row: Sym,
        /// Indexed relation.
        table: String,
        /// Indexed date attribute.
        column: String,
        /// Lower day-count bound (inclusive).
        lo: i32,
        /// Upper day-count bound (inclusive).
        hi: i32,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `val m = new MultiMap[K, Row]` — a join hash table; `key` records the
    /// provenance of the build key for the partitioning analysis.
    MultiMapNew {
        /// Map symbol.
        sym: Sym,
        /// Provenance of the build key.
        key: KeyMeta,
    },
    /// `m.addBinding(k, row)`
    MultiMapInsert {
        /// Target map.
        map: Sym,
        /// Insertion key.
        key: Expr,
        /// Inserted row symbol.
        row: Sym,
    },
    /// `m.get(k).foreach { row => body }`
    MultiMapLookup {
        /// Probed map.
        map: Sym,
        /// Probe key.
        key: Expr,
        /// Binder for each matching row.
        row: Sym,
        /// Per-match body.
        body: Vec<Stmt>,
    },
    /// Lowered join access: direct dereference of a load-time partition
    /// (Fig. 10). Replaces a `MultiMapNew`/`Insert`/`Lookup` triple.
    PartitionLookupLoop {
        /// Partitioned relation.
        table: String,
        /// Partition key attribute.
        column: String,
        /// Probe key.
        key: Expr,
        /// Binder for each row in the bucket.
        row: Sym,
        /// Per-match body.
        body: Vec<Stmt>,
    },
    /// Lowered hash structure: native bucket array with intrusive chaining
    /// (Fig. 11 / Fig. 7e).
    BucketArrayNew {
        /// Array symbol.
        sym: Sym,
        /// Entry struct name.
        entry: String,
        /// Pre-sizing from worst-case analysis / statistics.
        size_hint: SizeHint,
        /// Whether allocation was moved to load time (Section 3.5).
        hoisted: bool,
    },
    /// Chain a row into a bucket (intrusive `next` pointer).
    BucketArrayInsert {
        /// Target array.
        arr: Sym,
        /// Insertion key.
        key: Expr,
        /// Inserted row symbol.
        row: Sym,
    },
    /// Walk the chain of one bucket.
    BucketArrayLookup {
        /// Probed array.
        arr: Sym,
        /// Probe key.
        key: Expr,
        /// Binder for each chained row.
        row: Sym,
        /// Per-match body.
        body: Vec<Stmt>,
    },
    /// `val slots = hm.getOrElseUpdate(k, zeros); slots(i) ⊕= e`
    /// High-level aggregation update; `map` may name a `MultiMapNew` (generic)
    /// or `BucketArrayNew` (lowered) or a `SingleValue`/`DirectArray` result.
    AggUpdate {
        /// Aggregation store being updated.
        map: Sym,
        /// Group key.
        key: Expr,
        /// One `(operation, argument)` pair per aggregate slot.
        updates: Vec<(AggOp, Expr)>,
    },
    /// `new HashMap[K, Array[Double]]` aggregation store.
    AggMapNew {
        /// Store symbol.
        sym: Sym,
        /// Provenance of the group key.
        key: KeyMeta,
        /// Number of aggregate slots per group.
        naggs: usize,
        /// Physical realization after lowering.
        store: AggStoreKind,
        /// Whether initialization was moved to load time (Section 3.5.2).
        hoisted: bool,
    },
    /// Final iteration over groups: `hm.foreach { (k, aggs) => body }`.
    AggForeach {
        /// Iterated store.
        map: Sym,
        /// Binder for the group key.
        key_sym: Sym,
        /// Binder for the aggregate slots.
        aggs_sym: Sym,
        /// Per-group body.
        body: Vec<Stmt>,
    },
    /// Emit a result tuple (the `PrintOp` of Fig. 4a).
    Emit {
        /// Output expressions, one per result column.
        values: Vec<Expr>,
    },
    /// Sort the emitted buffer (terminal operators); keys are
    /// `(column, descending)` pairs.
    SortEmitted {
        /// Sort keys.
        keys: Vec<(usize, bool)>,
    },
    /// Truncate the emitted buffer.
    LimitEmitted {
        /// Maximum number of rows kept.
        n: usize,
    },
    /// Free-form comment kept in the generated C (stage banners).
    Comment(String),
}

/// Provenance of a collection key: which relation/column feeds it. This is
/// the information the partitioning analysis consumes (the paper gets it
/// from schema annotations; the plan→IR translation records it directly).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct KeyMeta {
    /// Base relation feeding the key, when statically known.
    pub table: Option<String>,
    /// Attribute name within `table`.
    pub column: Option<String>,
}

/// How an aggregation store is realized after lowering (Section 3.2.2 and
/// 3.5.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AggStoreKind {
    /// Generic library hash map (GLib in the paper's unoptimized C).
    GenericHashMap,
    /// Chained native bucket array (HashMapLowering).
    LoweredArray,
    /// Dense pre-initialized array over a statically-known key domain
    /// (data-structure-initialization hoisting).
    DirectArray,
    /// Single global slot (SingletonHashMapToValue).
    SingleValue,
}

/// Pre-sizing information (worst-case analysis / statistics, Section 3.2.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SizeHint {
    /// No estimate available; the structure grows dynamically.
    Unknown,
    /// Exact or worst-case row estimate.
    Rows(usize),
}

/// A whole compiled query: a flat statement list (stages are delimited by
/// comments), plus the relations it touches.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Program {
    /// Query name (becomes the C function name).
    pub name: String,
    /// Top-level statement list (stages delimited by comments).
    pub stmts: Vec<Stmt>,
    /// Fresh-symbol counter.
    pub next_sym: u32,
}

impl Program {
    /// Allocates a fresh, program-unique symbol.
    pub fn fresh(&mut self) -> Sym {
        let s = Sym(self.next_sym);
        self.next_sym += 1;
        s
    }

    /// Pre-order visit of every statement (including nested bodies).
    pub fn walk(&self, f: &mut impl FnMut(&Stmt)) {
        fn rec(stmts: &[Stmt], f: &mut impl FnMut(&Stmt)) {
            for s in stmts {
                f(s);
                for b in s.bodies() {
                    rec(b, f);
                }
            }
        }
        rec(&self.stmts, f);
    }

    /// Counts statements of any kind.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }

    /// Counts statements matching a predicate.
    pub fn count(&self, pred: impl Fn(&Stmt) -> bool) -> usize {
        let mut n = 0;
        self.walk(&mut |s| {
            if pred(s) {
                n += 1;
            }
        });
        n
    }
}

impl Stmt {
    /// Nested statement bodies of this node.
    pub fn bodies(&self) -> Vec<&Vec<Stmt>> {
        match self {
            Stmt::If { then_b, else_b, .. } => vec![then_b, else_b],
            Stmt::ScanLoop { body, .. }
            | Stmt::TiledScanLoop { body, .. }
            | Stmt::DateIndexLoop { body, .. }
            | Stmt::MultiMapLookup { body, .. }
            | Stmt::PartitionLookupLoop { body, .. }
            | Stmt::BucketArrayLookup { body, .. }
            | Stmt::AggForeach { body, .. } => vec![body],
            _ => vec![],
        }
    }

    /// Applies `f` to every nested body, rebuilding the statement.
    pub fn map_bodies(&self, f: &impl Fn(&[Stmt]) -> Vec<Stmt>) -> Stmt {
        let mut s = self.clone();
        match &mut s {
            Stmt::If { then_b, else_b, .. } => {
                *then_b = f(then_b);
                *else_b = f(else_b);
            }
            Stmt::ScanLoop { body, .. }
            | Stmt::TiledScanLoop { body, .. }
            | Stmt::DateIndexLoop { body, .. }
            | Stmt::MultiMapLookup { body, .. }
            | Stmt::PartitionLookupLoop { body, .. }
            | Stmt::BucketArrayLookup { body, .. }
            | Stmt::AggForeach { body, .. } => *body = f(body),
            _ => {}
        }
        s
    }

    /// Applies an expression rewriter to every expression in this statement
    /// (not descending into bodies — use with a statement traversal).
    pub fn map_exprs(&self, f: &impl Fn(&Expr) -> Option<Expr>) -> Stmt {
        let rw = |e: &Expr| e.rewrite(f);
        let mut s = self.clone();
        match &mut s {
            Stmt::Let { value, .. }
            | Stmt::Var { init: value, .. }
            | Stmt::Assign { value, .. } => *value = rw(value),
            Stmt::If { cond, .. } => *cond = rw(cond),
            Stmt::MultiMapInsert { key, .. }
            | Stmt::MultiMapLookup { key, .. }
            | Stmt::PartitionLookupLoop { key, .. }
            | Stmt::BucketArrayInsert { key, .. }
            | Stmt::BucketArrayLookup { key, .. } => *key = rw(key),
            Stmt::AggUpdate { key, updates, .. } => {
                *key = rw(key);
                for (_, e) in updates {
                    *e = rw(e);
                }
            }
            Stmt::Emit { values } => {
                for v in values {
                    *v = rw(v);
                }
            }
            _ => {}
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Program {
        let mut p = Program { name: "t".into(), stmts: vec![], next_sym: 0 };
        let row = p.fresh();
        let acc = p.fresh();
        p.stmts = vec![
            Stmt::Var { sym: acc, ty: Ty::F64, init: Expr::Float(0.0) },
            Stmt::ScanLoop {
                row,
                table: "lineitem".into(),
                body: vec![Stmt::If {
                    cond: Expr::bin(
                        BinOp::Lt,
                        Expr::Field(row, "l_quantity".into()),
                        Expr::Float(24.0),
                    ),
                    then_b: vec![Stmt::Assign {
                        sym: acc,
                        value: Expr::bin(
                            BinOp::Add,
                            Expr::sym(acc),
                            Expr::Field(row, "l_extendedprice".into()),
                        ),
                    }],
                    else_b: vec![],
                }],
            },
            Stmt::Emit { values: vec![Expr::sym(acc)] },
        ];
        p
    }

    #[test]
    fn walk_and_count() {
        let p = sample();
        assert_eq!(p.size(), 5);
        assert_eq!(p.count(|s| matches!(s, Stmt::ScanLoop { .. })), 1);
        assert_eq!(p.count(|s| matches!(s, Stmt::Assign { .. })), 1);
    }

    #[test]
    fn expr_rewrite_bottom_up() {
        // Replace Float(24.0) with Float(25.0) everywhere.
        let e = Expr::bin(
            BinOp::Lt,
            Expr::Float(24.0),
            Expr::bin(BinOp::Add, Expr::Float(24.0), Expr::Float(1.0)),
        );
        let out = e.rewrite(&|x| match x {
            Expr::Float(v) if *v == 24.0 => Some(Expr::Float(25.0)),
            _ => None,
        });
        let mut count = 0;
        fn count_f(e: &Expr, v: f64, n: &mut usize) {
            match e {
                Expr::Float(x) if *x == v => *n += 1,
                Expr::Bin(_, a, b) => {
                    count_f(a, v, n);
                    count_f(b, v, n);
                }
                _ => {}
            }
        }
        count_f(&out, 25.0, &mut count);
        assert_eq!(count, 2);
    }

    #[test]
    fn purity_and_syms() {
        let mut p = Program::default();
        let s = p.fresh();
        let e = Expr::bin(BinOp::Mul, Expr::sym(s), Expr::Field(s, "f".into()));
        assert!(e.is_pure());
        assert!(!Expr::Call("hash".into(), vec![]).is_pure());
        let mut syms = Vec::new();
        e.syms(&mut syms);
        assert_eq!(syms, vec![s, s]);
    }

    #[test]
    fn conj_folds() {
        assert_eq!(Expr::conj(vec![]), Expr::Bool(true));
        let one = Expr::Bool(false);
        assert_eq!(Expr::conj(vec![one.clone()]), one);
    }
}
