#![warn(missing_docs)]
//! SC — the optimizing compiler of LegoBase (Section 2.2 of the paper).
//!
//! SC's design principles, reproduced here:
//!
//! 1. **High-level rules, hidden IR internals** — optimizations are written
//!    as `analysis += rule { … }` / `rewrite += rule { … }` pattern matches
//!    over a typed IR ([`rules`]), never against code-generation templates.
//! 2. **Explicit transformation pipelines** — developers order transformers
//!    freely ([`pipeline`]), reproducing Fig. 5b: each LegoBase optimization
//!    is one pluggable transformer, cleanup passes (partial evaluation, DCE,
//!    CSE, scalar replacement) are re-run between domain-specific phases.
//! 3. **Progressive lowering** (Fig. 6/7) — the program starts as inlined
//!    query-operator code over generic collections ([`build`]), is lowered
//!    stage by stage (partitioned arrays, chained bucket arrays, dictionary
//!    integers, record-of-arrays, hoisted pools), and only the lowest level
//!    is stringified to C ([`cgen`]).
//!
//! The transformers live in [`transform`], one per paper optimization
//! (partitioning + date indices §§3.2.1/3.2.3, hash-map lowering §3.2.2,
//! column layout §3.3, string dictionaries §3.4, code motion §3.5, loop
//! fusion, field promotion), plus the beyond-the-paper
//! [`transform::Parallelize`], which decides the per-query morsel-driven
//! degree and the join/sort parallelization clearances.
//!
//! The pipeline produces two artifacts per query:
//! * a [`legobase_engine::Specialization`] report — the load/execution
//!   decisions the specialized executor consumes (this is how compilation
//!   decisions become measurable end to end), and
//! * the C source of the specialized query (inspectable, compiled with the
//!   system `cc` in tests; DESIGN.md §4 walks one query through the whole
//!   path).

pub mod build;
pub mod cgen;
pub mod eval;
pub mod ir;
pub mod pipeline;
pub mod rules;
pub mod scala;
pub mod transform;

pub use pipeline::{compile, CompileResult, Pipeline};
