//! The 22 TPC-H queries as physical plans, using the spec's validation
//! parameter values.

use crate::builder::{jcol, Ctx, Node};
use legobase_engine::expr::AggKind::{Avg, Count, Max, Min, Sum};
use legobase_engine::plan::JoinKind::{Anti, Inner, LeftOuter, Semi};
use legobase_engine::plan::QueryPlan;
use legobase_engine::plan::SortOrder::{Asc, Desc};
use legobase_engine::Expr;
use legobase_storage::{Catalog, Date, Value};

/// The workload's query names, in order.
pub const QUERY_NAMES: [&str; 22] = [
    "Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8", "Q9", "Q10", "Q11", "Q12", "Q13", "Q14", "Q15",
    "Q16", "Q17", "Q18", "Q19", "Q20", "Q21", "Q22",
];

/// Builds one query by number (1–22).
pub fn query(catalog: &Catalog, n: usize) -> QueryPlan {
    match n {
        1 => q1(catalog),
        2 => q2(catalog),
        3 => q3(catalog),
        4 => q4(catalog),
        5 => q5(catalog),
        6 => q6(catalog),
        7 => q7(catalog),
        8 => q8(catalog),
        9 => q9(catalog),
        10 => q10(catalog),
        11 => q11(catalog),
        12 => q12(catalog),
        13 => q13(catalog),
        14 => q14(catalog),
        15 => q15(catalog),
        16 => q16(catalog),
        17 => q17(catalog),
        18 => q18(catalog),
        19 => q19(catalog),
        20 => q20(catalog),
        21 => q21(catalog),
        22 => q22(catalog),
        _ => panic!("TPC-H defines queries 1–22, got {n}"),
    }
}

/// Builds the whole workload.
pub fn all_queries(catalog: &Catalog) -> Vec<QueryPlan> {
    (1..=22).map(|n| query(catalog, n)).collect()
}

fn date(y: i32, m: u32, d: u32) -> Expr {
    Expr::lit(Date::from_ymd(y, m, d))
}

/// `l_extendedprice * (1 - l_discount)` over a node.
fn revenue(n: &Node) -> Expr {
    Expr::mul(n.c("l_extendedprice"), Expr::sub(Expr::lit(1.0), n.c("l_discount")))
}

/// Q1 — pricing summary report.
fn q1(cat: &Catalog) -> QueryPlan {
    let c = Ctx::new(cat);
    let li = c.scan("lineitem");
    let disc_price = revenue(&li);
    let charge = Expr::mul(disc_price.clone(), Expr::add(Expr::lit(1.0), li.c("l_tax")));
    let out = li
        .clone()
        .filter(Expr::le(li.c("l_shipdate"), date(1998, 9, 2)))
        .agg(
            &["l_returnflag", "l_linestatus"],
            vec![
                (Sum, li.c("l_quantity"), "sum_qty"),
                (Sum, li.c("l_extendedprice"), "sum_base_price"),
                (Sum, disc_price, "sum_disc_price"),
                (Sum, charge, "sum_charge"),
                (Avg, li.c("l_quantity"), "avg_qty"),
                (Avg, li.c("l_extendedprice"), "avg_price"),
                (Avg, li.c("l_discount"), "avg_disc"),
                (Count, Expr::lit(1i64), "count_order"),
            ],
        )
        .sort(&[("l_returnflag", Asc), ("l_linestatus", Asc)]);
    c.build("Q1", out)
}

/// Q2 — minimum-cost supplier. The scalar subquery (min supply cost per part
/// across European suppliers) is a materialized stage.
fn q2(cat: &Catalog) -> QueryPlan {
    let mut c = Ctx::new(cat);
    let europe = |c: &Ctx| {
        c.scan("region").filter(Expr::eq(c.scan("region").c("r_name"), Expr::lit("EUROPE")))
    };
    // Stage: min ps_supplycost per part over European suppliers.
    let ps = c.scan("partsupp");
    let su = c.scan("supplier");
    let na = c.scan("nation");
    let chain = ps
        .join(su, &["ps_suppkey"], &["s_suppkey"], Inner)
        .join(na, &["s_nationkey"], &["n_nationkey"], Inner)
        .join(europe(&c), &["n_regionkey"], &["r_regionkey"], Inner);
    let mincost = chain
        .agg(&["ps_partkey"], vec![(Min, chain.c("ps_supplycost"), "min_cost")])
        .project(vec![(Expr::Col(0), "mc_partkey"), (Expr::Col(1), "min_cost")]);
    c.stage("mincost", mincost);

    let part = c.scan("part").filter(Expr::and(
        Expr::eq(c.scan("part").c("p_size"), Expr::lit(15i64)),
        Expr::ends_with(c.scan("part").c("p_type"), "BRASS"),
    ));
    let j = part
        .join(c.scan("partsupp"), &["p_partkey"], &["ps_partkey"], Inner)
        .join(c.scan("supplier"), &["ps_suppkey"], &["s_suppkey"], Inner)
        .join(c.scan("nation"), &["s_nationkey"], &["n_nationkey"], Inner)
        .join(europe(&c), &["n_regionkey"], &["r_regionkey"], Inner);
    let mc = c.scan("#mincost");
    let residual = Expr::eq(jcol(&j, &mc, "ps_supplycost"), jcol(&j, &mc, "min_cost"));
    let joined2 = j.join_residual(mc, &["p_partkey"], &["mc_partkey"], Inner, Some(residual));
    let out = joined2
        .project(vec![
            (joined2.c("s_acctbal"), "s_acctbal"),
            (joined2.c("s_name"), "s_name"),
            (joined2.c("n_name"), "n_name"),
            (joined2.c("p_partkey"), "p_partkey"),
            (joined2.c("p_mfgr"), "p_mfgr"),
            (joined2.c("s_address"), "s_address"),
            (joined2.c("s_phone"), "s_phone"),
            (joined2.c("s_comment"), "s_comment"),
        ])
        .sort(&[("s_acctbal", Desc), ("n_name", Asc), ("s_name", Asc), ("p_partkey", Asc)])
        .limit(100);
    c.build("Q2", out)
}

/// Q3 — shipping priority.
fn q3(cat: &Catalog) -> QueryPlan {
    let c = Ctx::new(cat);
    let cust = c
        .scan("customer")
        .filter(Expr::eq(c.scan("customer").c("c_mktsegment"), Expr::lit("BUILDING")));
    let ord =
        c.scan("orders").filter(Expr::lt(c.scan("orders").c("o_orderdate"), date(1995, 3, 15)));
    let li =
        c.scan("lineitem").filter(Expr::gt(c.scan("lineitem").c("l_shipdate"), date(1995, 3, 15)));
    let joined = cust.join(ord, &["c_custkey"], &["o_custkey"], Inner).join(
        li,
        &["o_orderkey"],
        &["l_orderkey"],
        Inner,
    );
    let out = joined
        .agg(
            &["l_orderkey", "o_orderdate", "o_shippriority"],
            vec![(Sum, revenue(&joined), "revenue")],
        )
        .sort(&[("revenue", Desc), ("o_orderdate", Asc)])
        .limit(10);
    let out = out.project(vec![
        (out.c("l_orderkey"), "l_orderkey"),
        (out.c("revenue"), "revenue"),
        (out.c("o_orderdate"), "o_orderdate"),
        (out.c("o_shippriority"), "o_shippriority"),
    ]);
    c.build("Q3", out)
}

/// Q4 — order priority checking (EXISTS → semi join).
fn q4(cat: &Catalog) -> QueryPlan {
    let c = Ctx::new(cat);
    let ord = c.scan("orders").filter(Expr::and(
        Expr::ge(c.scan("orders").c("o_orderdate"), date(1993, 7, 1)),
        Expr::lt(c.scan("orders").c("o_orderdate"), date(1993, 10, 1)),
    ));
    let li = c.scan("lineitem").filter(Expr::lt(
        c.scan("lineitem").c("l_commitdate"),
        c.scan("lineitem").c("l_receiptdate"),
    ));
    let out = ord
        .join(li, &["o_orderkey"], &["l_orderkey"], Semi)
        .agg(&["o_orderpriority"], vec![(Count, Expr::lit(1i64), "order_count")])
        .sort(&[("o_orderpriority", Asc)]);
    c.build("Q4", out)
}

/// Q5 — local supplier volume.
fn q5(cat: &Catalog) -> QueryPlan {
    let c = Ctx::new(cat);
    let ord = c.scan("orders").filter(Expr::and(
        Expr::ge(c.scan("orders").c("o_orderdate"), date(1994, 1, 1)),
        Expr::lt(c.scan("orders").c("o_orderdate"), date(1995, 1, 1)),
    ));
    let co = c.scan("customer").join(ord, &["c_custkey"], &["o_custkey"], Inner);
    let col = co.join(c.scan("lineitem"), &["o_orderkey"], &["l_orderkey"], Inner);
    let su = c.scan("supplier");
    let residual = Expr::eq(jcol(&col, &su, "c_nationkey"), jcol(&col, &su, "s_nationkey"));
    let cols = col.join_residual(su, &["l_suppkey"], &["s_suppkey"], Inner, Some(residual));
    let joined = cols.join(c.scan("nation"), &["s_nationkey"], &["n_nationkey"], Inner).join(
        c.scan("region").filter(Expr::eq(c.scan("region").c("r_name"), Expr::lit("ASIA"))),
        &["n_regionkey"],
        &["r_regionkey"],
        Inner,
    );
    let out = joined
        .agg(&["n_name"], vec![(Sum, revenue(&joined), "revenue")])
        .sort(&[("revenue", Desc)]);
    c.build("Q5", out)
}

/// Q6 — forecasting revenue change (the paper's Fig. 4a example).
fn q6(cat: &Catalog) -> QueryPlan {
    let c = Ctx::new(cat);
    let li = c.scan("lineitem");
    let out = li
        .clone()
        .filter(Expr::all(vec![
            Expr::ge(li.c("l_shipdate"), date(1994, 1, 1)),
            Expr::lt(li.c("l_shipdate"), date(1995, 1, 1)),
            Expr::ge(li.c("l_discount"), Expr::lit(0.05)),
            Expr::le(li.c("l_discount"), Expr::lit(0.07)),
            Expr::lt(li.c("l_quantity"), Expr::lit(24.0)),
        ]))
        .agg(&[], vec![(Sum, Expr::mul(li.c("l_extendedprice"), li.c("l_discount")), "revenue")]);
    c.build("Q6", out)
}

/// Q7 — volume shipping between two nations.
fn q7(cat: &Catalog) -> QueryPlan {
    let c = Ctx::new(cat);
    let n1 = c.scan("nation").project(vec![
        (c.scan("nation").c("n_nationkey"), "n1_key"),
        (c.scan("nation").c("n_name"), "supp_nation"),
    ]);
    let n2 = c.scan("nation").project(vec![
        (c.scan("nation").c("n_nationkey"), "n2_key"),
        (c.scan("nation").c("n_name"), "cust_nation"),
    ]);
    let li = c.scan("lineitem").filter(Expr::and(
        Expr::ge(c.scan("lineitem").c("l_shipdate"), date(1995, 1, 1)),
        Expr::le(c.scan("lineitem").c("l_shipdate"), date(1996, 12, 31)),
    ));
    let joined = c
        .scan("supplier")
        .join(li, &["s_suppkey"], &["l_suppkey"], Inner)
        .join(c.scan("orders"), &["l_orderkey"], &["o_orderkey"], Inner)
        .join(c.scan("customer"), &["o_custkey"], &["c_custkey"], Inner)
        .join(n1, &["s_nationkey"], &["n1_key"], Inner)
        .join(n2, &["c_nationkey"], &["n2_key"], Inner);
    let pair = |a: &str, b: &str, j: &Node| {
        Expr::and(
            Expr::eq(j.c("supp_nation"), Expr::lit(a)),
            Expr::eq(j.c("cust_nation"), Expr::lit(b)),
        )
    };
    let filtered = joined
        .clone()
        .filter(Expr::or(pair("FRANCE", "GERMANY", &joined), pair("GERMANY", "FRANCE", &joined)));
    let shaped = filtered.project(vec![
        (filtered.c("supp_nation"), "supp_nation"),
        (filtered.c("cust_nation"), "cust_nation"),
        (Expr::year(filtered.c("l_shipdate")), "l_year"),
        (revenue(&filtered), "volume"),
    ]);
    let out = shaped
        .agg(&["supp_nation", "cust_nation", "l_year"], vec![(Sum, shaped.c("volume"), "revenue")])
        .sort(&[("supp_nation", Asc), ("cust_nation", Asc), ("l_year", Asc)]);
    c.build("Q7", out)
}

/// Q8 — national market share.
fn q8(cat: &Catalog) -> QueryPlan {
    let c = Ctx::new(cat);
    let part = c
        .scan("part")
        .filter(Expr::eq(c.scan("part").c("p_type"), Expr::lit("ECONOMY ANODIZED STEEL")));
    let ord = c.scan("orders").filter(Expr::and(
        Expr::ge(c.scan("orders").c("o_orderdate"), date(1995, 1, 1)),
        Expr::le(c.scan("orders").c("o_orderdate"), date(1996, 12, 31)),
    ));
    let n1 = c.scan("nation").project(vec![
        (c.scan("nation").c("n_nationkey"), "n1_key"),
        (c.scan("nation").c("n_regionkey"), "n1_region"),
    ]);
    let n2 = c.scan("nation").project(vec![
        (c.scan("nation").c("n_nationkey"), "n2_key"),
        (c.scan("nation").c("n_name"), "supp_nation"),
    ]);
    let america =
        c.scan("region").filter(Expr::eq(c.scan("region").c("r_name"), Expr::lit("AMERICA")));
    let joined = part
        .join(c.scan("lineitem"), &["p_partkey"], &["l_partkey"], Inner)
        .join(c.scan("supplier"), &["l_suppkey"], &["s_suppkey"], Inner)
        .join(ord, &["l_orderkey"], &["o_orderkey"], Inner)
        .join(c.scan("customer"), &["o_custkey"], &["c_custkey"], Inner)
        .join(n1, &["c_nationkey"], &["n1_key"], Inner)
        .join(america, &["n1_region"], &["r_regionkey"], Inner)
        .join(n2, &["s_nationkey"], &["n2_key"], Inner);
    let shaped = joined.project(vec![
        (Expr::year(joined.c("o_orderdate")), "o_year"),
        (revenue(&joined), "volume"),
        (joined.c("supp_nation"), "nation"),
    ]);
    let brazil_volume = Expr::case(
        Expr::eq(shaped.c("nation"), Expr::lit("BRAZIL")),
        shaped.c("volume"),
        Expr::lit(0.0),
    );
    let agg = shaped
        .agg(&["o_year"], vec![(Sum, brazil_volume, "brazil"), (Sum, shaped.c("volume"), "total")]);
    let out = agg
        .project(vec![
            (agg.c("o_year"), "o_year"),
            (Expr::div(agg.c("brazil"), agg.c("total")), "mkt_share"),
        ])
        .sort(&[("o_year", Asc)]);
    c.build("Q8", out)
}

/// Q9 — product type profit measure.
fn q9(cat: &Catalog) -> QueryPlan {
    let c = Ctx::new(cat);
    let part = c.scan("part").filter(Expr::contains(c.scan("part").c("p_name"), "green"));
    let joined = part
        .join(c.scan("lineitem"), &["p_partkey"], &["l_partkey"], Inner)
        .join(c.scan("supplier"), &["l_suppkey"], &["s_suppkey"], Inner)
        .join(c.scan("partsupp"), &["l_suppkey", "l_partkey"], &["ps_suppkey", "ps_partkey"], Inner)
        .join(c.scan("orders"), &["l_orderkey"], &["o_orderkey"], Inner)
        .join(c.scan("nation"), &["s_nationkey"], &["n_nationkey"], Inner);
    let amount =
        Expr::sub(revenue(&joined), Expr::mul(joined.c("ps_supplycost"), joined.c("l_quantity")));
    let shaped = joined.project(vec![
        (joined.c("n_name"), "nation"),
        (Expr::year(joined.c("o_orderdate")), "o_year"),
        (amount, "amount"),
    ]);
    let out = shaped
        .agg(&["nation", "o_year"], vec![(Sum, shaped.c("amount"), "sum_profit")])
        .sort(&[("nation", Asc), ("o_year", Desc)]);
    c.build("Q9", out)
}

/// Q10 — returned item reporting.
fn q10(cat: &Catalog) -> QueryPlan {
    let c = Ctx::new(cat);
    let ord = c.scan("orders").filter(Expr::and(
        Expr::ge(c.scan("orders").c("o_orderdate"), date(1993, 10, 1)),
        Expr::lt(c.scan("orders").c("o_orderdate"), date(1994, 1, 1)),
    ));
    let li =
        c.scan("lineitem").filter(Expr::eq(c.scan("lineitem").c("l_returnflag"), Expr::lit("R")));
    let joined = c
        .scan("customer")
        .join(ord, &["c_custkey"], &["o_custkey"], Inner)
        .join(li, &["o_orderkey"], &["l_orderkey"], Inner)
        .join(c.scan("nation"), &["c_nationkey"], &["n_nationkey"], Inner);
    let out = joined
        .agg(
            &["c_custkey", "c_name", "c_acctbal", "c_phone", "n_name", "c_address", "c_comment"],
            vec![(Sum, revenue(&joined), "revenue")],
        )
        .sort(&[("revenue", Desc)])
        .limit(20);
    c.build("Q10", out)
}

/// Q11 — important stock identification (HAVING over a global scalar).
fn q11(cat: &Catalog) -> QueryPlan {
    let mut c = Ctx::new(cat);
    let germany =
        c.scan("nation").filter(Expr::eq(c.scan("nation").c("n_name"), Expr::lit("GERMANY")));
    let gps = c
        .scan("partsupp")
        .join(c.scan("supplier"), &["ps_suppkey"], &["s_suppkey"], Inner)
        .join(germany, &["s_nationkey"], &["n_nationkey"], Inner);
    c.stage("gps", gps);

    let value_expr = |n: &Node| Expr::mul(n.c("ps_supplycost"), n.c("ps_availqty"));
    let g = c.scan("#gps");
    let total = g.clone().agg(&[], vec![(Sum, value_expr(&g), "total")]);
    c.stage("total", total);

    let g = c.scan("#gps");
    let per_part = g.clone().agg(&["ps_partkey"], vec![(Sum, value_expr(&g), "value")]);
    let with_total = per_part.cross_join(c.scan("#total"));
    let out = with_total
        .clone()
        .filter(Expr::gt(
            with_total.c("value"),
            Expr::mul(with_total.c("total"), Expr::lit(0.0001)),
        ))
        .project(vec![(with_total.c("ps_partkey"), "ps_partkey"), (with_total.c("value"), "value")])
        .sort(&[("value", Desc)]);
    c.build("Q11", out)
}

/// Q12 — shipping modes and order priority (the paper's Fig. 8 example).
fn q12(cat: &Catalog) -> QueryPlan {
    let c = Ctx::new(cat);
    let li = c.scan("lineitem");
    let li = li.clone().filter(Expr::all(vec![
        Expr::ge(li.c("l_receiptdate"), date(1994, 1, 1)),
        Expr::lt(li.c("l_receiptdate"), date(1995, 1, 1)),
        Expr::in_list(li.c("l_shipmode"), vec![Value::from("MAIL"), Value::from("SHIP")]),
        Expr::lt(li.c("l_shipdate"), li.c("l_commitdate")),
        Expr::lt(li.c("l_commitdate"), li.c("l_receiptdate")),
    ]));
    let joined = c.scan("orders").join(li, &["o_orderkey"], &["l_orderkey"], Inner);
    let is_high = Expr::in_list(
        joined.c("o_orderpriority"),
        vec![Value::from("1-URGENT"), Value::from("2-HIGH")],
    );
    let out = joined
        .clone()
        .agg(
            &["l_shipmode"],
            vec![
                (
                    Sum,
                    Expr::case(is_high.clone(), Expr::lit(1i64), Expr::lit(0i64)),
                    "high_line_count",
                ),
                (Sum, Expr::case(is_high, Expr::lit(0i64), Expr::lit(1i64)), "low_line_count"),
            ],
        )
        .sort(&[("l_shipmode", Asc)]);
    c.build("Q12", out)
}

/// Q13 — customer distribution (left outer join + word-pattern filter).
fn q13(cat: &Catalog) -> QueryPlan {
    let c = Ctx::new(cat);
    let ord = c.scan("orders").filter(Expr::not(Expr::word_seq(
        c.scan("orders").c("o_comment"),
        "special",
        "requests",
    )));
    let joined = c.scan("customer").join(ord, &["c_custkey"], &["o_custkey"], LeftOuter);
    let per_cust =
        joined.clone().agg(&["c_custkey"], vec![(Count, joined.c("o_orderkey"), "c_count")]);
    let out = per_cust
        .agg(&["c_count"], vec![(Count, Expr::lit(1i64), "custdist")])
        .sort(&[("custdist", Desc), ("c_count", Desc)]);
    c.build("Q13", out)
}

/// Q14 — promotion effect.
fn q14(cat: &Catalog) -> QueryPlan {
    let c = Ctx::new(cat);
    let li = c.scan("lineitem").filter(Expr::and(
        Expr::ge(c.scan("lineitem").c("l_shipdate"), date(1995, 9, 1)),
        Expr::lt(c.scan("lineitem").c("l_shipdate"), date(1995, 10, 1)),
    ));
    let joined = li.join(c.scan("part"), &["l_partkey"], &["p_partkey"], Inner);
    let rev = revenue(&joined);
    let promo =
        Expr::case(Expr::starts_with(joined.c("p_type"), "PROMO"), rev.clone(), Expr::lit(0.0));
    let agg = joined.agg(&[], vec![(Sum, promo, "promo"), (Sum, rev, "total")]);
    let out = agg.project(vec![(
        Expr::div(Expr::mul(Expr::lit(100.0), agg.c("promo")), agg.c("total")),
        "promo_revenue",
    )]);
    c.build("Q14", out)
}

/// Q15 — top supplier (view → stage; ties broken by the max-revenue equality).
fn q15(cat: &Catalog) -> QueryPlan {
    let mut c = Ctx::new(cat);
    let li = c.scan("lineitem");
    let rev = li
        .clone()
        .filter(Expr::and(
            Expr::ge(li.c("l_shipdate"), date(1996, 1, 1)),
            Expr::lt(li.c("l_shipdate"), date(1996, 4, 1)),
        ))
        .agg(&["l_suppkey"], vec![(Sum, revenue(&li), "total_revenue")]);
    c.stage("revenue", rev);
    let max_rev =
        c.scan("#revenue").agg(&[], vec![(Max, c.scan("#revenue").c("total_revenue"), "max_rev")]);
    c.stage("maxrev", max_rev);

    let joined = c
        .scan("supplier")
        .join(c.scan("#revenue"), &["s_suppkey"], &["l_suppkey"], Inner)
        .cross_join(c.scan("#maxrev"));
    let out = joined
        .clone()
        .filter(Expr::eq(joined.c("total_revenue"), joined.c("max_rev")))
        .project(vec![
            (joined.c("s_suppkey"), "s_suppkey"),
            (joined.c("s_name"), "s_name"),
            (joined.c("s_address"), "s_address"),
            (joined.c("s_phone"), "s_phone"),
            (joined.c("total_revenue"), "total_revenue"),
        ])
        .sort(&[("s_suppkey", Asc)]);
    c.build("Q15", out)
}

/// Q16 — parts/supplier relationship (NOT EXISTS → anti join, COUNT DISTINCT).
fn q16(cat: &Catalog) -> QueryPlan {
    let c = Ctx::new(cat);
    let part = c.scan("part").filter(Expr::all(vec![
        Expr::ne(c.scan("part").c("p_brand"), Expr::lit("Brand#45")),
        Expr::not(Expr::starts_with(c.scan("part").c("p_type"), "MEDIUM POLISHED")),
        Expr::in_list(
            c.scan("part").c("p_size"),
            [49i64, 14, 23, 45, 19, 3, 36, 9].iter().map(|&v| Value::Int(v)).collect(),
        ),
    ]));
    let complainers = c.scan("supplier").filter(Expr::word_seq(
        c.scan("supplier").c("s_comment"),
        "Customer",
        "Complaints",
    ));
    let joined = part.join(c.scan("partsupp"), &["p_partkey"], &["ps_partkey"], Inner).join(
        complainers,
        &["ps_suppkey"],
        &["s_suppkey"],
        Anti,
    );
    let out = joined
        .clone()
        .project(vec![
            (joined.c("p_brand"), "p_brand"),
            (joined.c("p_type"), "p_type"),
            (joined.c("p_size"), "p_size"),
            (joined.c("ps_suppkey"), "ps_suppkey"),
        ])
        .distinct()
        .agg(&["p_brand", "p_type", "p_size"], vec![(Count, Expr::lit(1i64), "supplier_cnt")])
        .sort(&[("supplier_cnt", Desc), ("p_brand", Asc), ("p_type", Asc), ("p_size", Asc)]);
    c.build("Q16", out)
}

/// Q17 — small-quantity-order revenue (correlated scalar → per-part stage).
fn q17(cat: &Catalog) -> QueryPlan {
    let mut c = Ctx::new(cat);
    let li = c.scan("lineitem");
    let avgq = li
        .clone()
        .agg(&["l_partkey"], vec![(Avg, li.c("l_quantity"), "avg_qty")])
        .project(vec![(Expr::Col(0), "ap_partkey"), (Expr::Col(1), "avg_qty")]);
    c.stage("avgq", avgq);

    let part = c.scan("part").filter(Expr::and(
        Expr::eq(c.scan("part").c("p_brand"), Expr::lit("Brand#23")),
        Expr::eq(c.scan("part").c("p_container"), Expr::lit("MED BOX")),
    ));
    let j = part.join(c.scan("lineitem"), &["p_partkey"], &["l_partkey"], Inner);
    let aq = c.scan("#avgq");
    let residual =
        Expr::lt(jcol(&j, &aq, "l_quantity"), Expr::mul(Expr::lit(0.2), jcol(&j, &aq, "avg_qty")));
    let joined = j.join_residual(aq, &["p_partkey"], &["ap_partkey"], Inner, Some(residual));
    let agg = joined.clone().agg(&[], vec![(Sum, joined.c("l_extendedprice"), "total")]);
    let out = agg.project(vec![(Expr::div(agg.c("total"), Expr::lit(7.0)), "avg_yearly")]);
    c.build("Q17", out)
}

/// Q18 — large volume customers (HAVING via stage + semi join).
fn q18(cat: &Catalog) -> QueryPlan {
    let mut c = Ctx::new(cat);
    let li = c.scan("lineitem");
    let big = li
        .clone()
        .agg(&["l_orderkey"], vec![(Sum, li.c("l_quantity"), "sum_qty")])
        .filter(Expr::gt(Expr::Col(1), Expr::lit(300.0)))
        .project(vec![(Expr::Col(0), "big_orderkey")]);
    c.stage("bigorders", big);

    let ord = c.scan("orders").join(c.scan("#bigorders"), &["o_orderkey"], &["big_orderkey"], Semi);
    let joined = c.scan("customer").join(ord, &["c_custkey"], &["o_custkey"], Inner).join(
        c.scan("lineitem"),
        &["o_orderkey"],
        &["l_orderkey"],
        Inner,
    );
    let out = joined
        .clone()
        .agg(
            &["c_name", "c_custkey", "o_orderkey", "o_orderdate", "o_totalprice"],
            vec![(Sum, joined.c("l_quantity"), "sum_qty")],
        )
        .sort(&[("o_totalprice", Desc), ("o_orderdate", Asc)])
        .limit(100);
    c.build("Q18", out)
}

/// Q19 — discounted revenue (disjunctive join predicate).
fn q19(cat: &Catalog) -> QueryPlan {
    let c = Ctx::new(cat);
    let li = c.scan("lineitem");
    let li = li.clone().filter(Expr::and(
        Expr::in_list(li.c("l_shipmode"), vec![Value::from("AIR"), Value::from("REG AIR")]),
        Expr::eq(li.c("l_shipinstruct"), Expr::lit("DELIVER IN PERSON")),
    ));
    let joined = li.join(c.scan("part"), &["l_partkey"], &["p_partkey"], Inner);
    let bracket = |j: &Node, brand: &str, containers: [&str; 4], qlo: f64, qhi: f64, smax: i64| {
        Expr::all(vec![
            Expr::eq(j.c("p_brand"), Expr::lit(brand)),
            Expr::in_list(j.c("p_container"), containers.iter().map(|&s| Value::from(s)).collect()),
            Expr::ge(j.c("l_quantity"), Expr::lit(qlo)),
            Expr::le(j.c("l_quantity"), Expr::lit(qhi)),
            Expr::ge(j.c("p_size"), Expr::lit(1i64)),
            Expr::le(j.c("p_size"), Expr::lit(smax)),
        ])
    };
    let cond = Expr::or(
        bracket(&joined, "Brand#12", ["SM CASE", "SM BOX", "SM PACK", "SM PKG"], 1.0, 11.0, 5),
        Expr::or(
            bracket(
                &joined,
                "Brand#23",
                ["MED BAG", "MED BOX", "MED PKG", "MED PACK"],
                10.0,
                20.0,
                10,
            ),
            bracket(
                &joined,
                "Brand#34",
                ["LG CASE", "LG BOX", "LG PACK", "LG PKG"],
                20.0,
                30.0,
                15,
            ),
        ),
    );
    let filtered = joined.filter(cond);
    let out = filtered.clone().agg(&[], vec![(Sum, revenue(&filtered), "revenue")]);
    c.build("Q19", out)
}

/// Q20 — potential part promotion (nested IN subqueries → stages).
fn q20(cat: &Catalog) -> QueryPlan {
    let mut c = Ctx::new(cat);
    let li = c.scan("lineitem");
    let liqty = li
        .clone()
        .filter(Expr::and(
            Expr::ge(li.c("l_shipdate"), date(1994, 1, 1)),
            Expr::lt(li.c("l_shipdate"), date(1995, 1, 1)),
        ))
        .agg(&["l_partkey", "l_suppkey"], vec![(Sum, li.c("l_quantity"), "sq")]);
    c.stage("liqty", liqty);

    let forest = c.scan("part").filter(Expr::starts_with(c.scan("part").c("p_name"), "forest"));
    let ps = c.scan("partsupp").join(forest, &["ps_partkey"], &["p_partkey"], Semi);
    let lq = c.scan("#liqty");
    let residual =
        Expr::gt(jcol(&ps, &lq, "ps_availqty"), Expr::mul(Expr::lit(0.5), jcol(&ps, &lq, "sq")));
    let eligible = ps
        .join_residual(
            lq,
            &["ps_partkey", "ps_suppkey"],
            &["l_partkey", "l_suppkey"],
            Inner,
            Some(residual),
        )
        .project(vec![(Expr::Col(1), "e_suppkey")]);
    c.stage("eligible", eligible);

    let canada =
        c.scan("nation").filter(Expr::eq(c.scan("nation").c("n_name"), Expr::lit("CANADA")));
    let out = c
        .scan("supplier")
        .join(c.scan("#eligible"), &["s_suppkey"], &["e_suppkey"], Semi)
        .join(canada, &["s_nationkey"], &["n_nationkey"], Inner);
    let out = out
        .project(vec![(out.c("s_name"), "s_name"), (out.c("s_address"), "s_address")])
        .sort(&[("s_name", Asc)]);
    c.build("Q20", out)
}

/// Q21 — suppliers who kept orders waiting (EXISTS + NOT EXISTS with
/// inequality correlation → semi/anti joins with residuals).
fn q21(cat: &Catalog) -> QueryPlan {
    let c = Ctx::new(cat);
    let late = |c: &Ctx| {
        let li = c.scan("lineitem");
        let pred = Expr::gt(li.c("l_receiptdate"), li.c("l_commitdate"));
        li.filter(pred)
    };
    let saudi =
        c.scan("nation").filter(Expr::eq(c.scan("nation").c("n_name"), Expr::lit("SAUDI ARABIA")));
    let orders_f =
        c.scan("orders").filter(Expr::eq(c.scan("orders").c("o_orderstatus"), Expr::lit("F")));
    let l1 = c
        .scan("supplier")
        .join(saudi, &["s_nationkey"], &["n_nationkey"], Inner)
        .join(late(&c), &["s_suppkey"], &["l_suppkey"], Inner)
        .join(orders_f, &["l_orderkey"], &["o_orderkey"], Inner);

    // EXISTS another lineitem of the same order from a different supplier.
    let l2 = c.scan("lineitem").project(vec![
        (c.scan("lineitem").c("l_orderkey"), "l2_orderkey"),
        (c.scan("lineitem").c("l_suppkey"), "l2_suppkey"),
    ]);
    let res2 = Expr::ne(jcol(&l1, &l2, "l_suppkey"), jcol(&l1, &l2, "l2_suppkey"));
    let with_other = l1.join_residual(l2, &["l_orderkey"], &["l2_orderkey"], Semi, Some(res2));

    // NOT EXISTS another *late* lineitem from a different supplier.
    let l3 = late(&c).project(vec![
        (c.scan("lineitem").c("l_orderkey"), "l3_orderkey"),
        (c.scan("lineitem").c("l_suppkey"), "l3_suppkey"),
    ]);
    let res3 = Expr::ne(jcol(&with_other, &l3, "l_suppkey"), jcol(&with_other, &l3, "l3_suppkey"));
    let sole_blame =
        with_other.join_residual(l3, &["l_orderkey"], &["l3_orderkey"], Anti, Some(res3));

    let out = sole_blame
        .agg(&["s_name"], vec![(Count, Expr::lit(1i64), "numwait")])
        .sort(&[("numwait", Desc), ("s_name", Asc)])
        .limit(100);
    c.build("Q21", out)
}

/// Q22 — global sales opportunity (anti join + scalar average stage).
fn q22(cat: &Catalog) -> QueryPlan {
    let mut c = Ctx::new(cat);
    let codes: Vec<Value> =
        ["13", "31", "23", "29", "30", "18", "17"].iter().map(|&s| Value::from(s)).collect();
    let cust = c.scan("customer");
    let code_of = |n: &Node| Expr::substr(n.c("c_phone"), 1, 2);
    let avgbal = cust
        .clone()
        .filter(Expr::and(
            Expr::gt(cust.c("c_acctbal"), Expr::lit(0.0)),
            Expr::in_list(code_of(&cust), codes.clone()),
        ))
        .agg(&[], vec![(Avg, cust.c("c_acctbal"), "avg_bal")]);
    c.stage("avgbal", avgbal);

    let cust = c.scan("customer");
    let candidates = cust
        .clone()
        .filter(Expr::in_list(code_of(&cust), codes))
        .join(c.scan("orders"), &["c_custkey"], &["o_custkey"], Anti)
        .cross_join(c.scan("#avgbal"));
    let filtered =
        candidates.clone().filter(Expr::gt(candidates.c("c_acctbal"), candidates.c("avg_bal")));
    let shaped = filtered
        .project(vec![(code_of(&filtered), "cntrycode"), (filtered.c("c_acctbal"), "c_acctbal")]);
    let out = shaped
        .clone()
        .agg(
            &["cntrycode"],
            vec![(Count, Expr::lit(1i64), "numcust"), (Sum, shaped.c("c_acctbal"), "totacctbal")],
        )
        .sort(&[("cntrycode", Asc)]);
    c.build("Q22", out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use legobase_engine::plan::used_base_columns;

    #[test]
    fn all_queries_build_and_typecheck() {
        let cat = legobase_tpch::catalog();
        let queries = all_queries(&cat);
        assert_eq!(queries.len(), 22);
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(q.name, QUERY_NAMES[i]);
            // Schema resolution must succeed for every stage and the root.
            let (_, root) = q.schemas(&|t: &str| cat.table(t).schema.clone());
            assert!(!root.is_empty(), "{}: empty output schema", q.name);
            assert!(q.size() >= 2, "{}: suspiciously small plan", q.name);
        }
    }

    #[test]
    fn used_columns_are_proper_subsets() {
        let cat = legobase_tpch::catalog();
        for q in all_queries(&cat) {
            let used = used_base_columns(&q, &|t: &str| cat.table(t).schema.clone());
            assert!(!used.is_empty(), "{} uses no base tables?", q.name);
            for (table, cols) in &used {
                let arity = cat.table(table).schema.len();
                assert!(cols.iter().all(|&c| c < arity), "{}: bad column in {table}", q.name);
            }
        }
        // Q12 references 8 attributes (paper, Section 3.6.1) — ours includes
        // the join keys: lineitem + orders usage must be well below the 25
        // total attributes.
        let q12 = query(&cat, 12);
        let used = used_base_columns(&q12, &|t: &str| cat.table(t).schema.clone());
        let total: usize = used.values().map(|s| s.len()).sum();
        assert!(total <= 10, "Q12 should touch few attributes, got {total}");
    }

    #[test]
    fn expected_query_shapes() {
        let cat = legobase_tpch::catalog();
        assert_eq!(query(&cat, 6).stages.len(), 0);
        assert_eq!(query(&cat, 2).stages.len(), 1);
        assert_eq!(query(&cat, 11).stages.len(), 2);
        assert_eq!(query(&cat, 15).stages.len(), 2);
        assert_eq!(query(&cat, 20).stages.len(), 2);
        // Q13 is the only outer join in the workload.
        let mut outer = 0;
        for q in all_queries(&cat) {
            for p in q.plans() {
                p.walk(&mut |n| {
                    if let legobase_engine::Plan::HashJoin { kind, .. } = n {
                        if *kind == LeftOuter {
                            outer += 1;
                        }
                    }
                });
            }
        }
        assert_eq!(outer, 1);
    }

    #[test]
    #[should_panic(expected = "TPC-H defines queries 1–22")]
    fn invalid_query_number() {
        query(&legobase_tpch::catalog(), 23);
    }
}
