//! A small plan-builder DSL.
//!
//! Mirrors how the paper's Scala plans are written (Fig. 4a / Fig. 8):
//! operator constructors chained bottom-up, with attribute names resolved to
//! positions at plan-construction time.

use legobase_engine::expr::AggKind;
use legobase_engine::plan::{AggSpec, JoinKind, Plan, QueryPlan, SortOrder};
use legobase_engine::Expr;
use legobase_storage::{Catalog, Schema};
use std::collections::HashMap;

/// Build context: resolves base and stage schemas.
pub struct Ctx {
    catalog: Catalog,
    stages: Vec<(String, Plan)>,
    stage_schemas: HashMap<String, Schema>,
}

impl Ctx {
    /// Creates a builder context over a catalog.
    pub fn new(catalog: &Catalog) -> Ctx {
        Ctx { catalog: catalog.clone(), stages: Vec::new(), stage_schemas: HashMap::new() }
    }

    fn schema_of(&self, table: &str) -> Schema {
        if let Some(s) = self.stage_schemas.get(table) {
            s.clone()
        } else {
            self.catalog.table(table).schema.clone()
        }
    }

    /// Scans a base table or a previously registered stage (`#name`).
    pub fn scan(&self, table: &str) -> Node {
        Node { plan: Plan::scan(table), schema: self.schema_of(table) }
    }

    /// Materializes `node` as stage `name`; later scans refer to `#name`.
    pub fn stage(&mut self, name: &str, node: Node) {
        self.stage_schemas.insert(format!("#{name}"), node.schema);
        self.stages.push((name.to_string(), node.plan));
    }

    /// Finishes the query.
    pub fn build(self, name: &str, root: Node) -> QueryPlan {
        let mut q = QueryPlan::new(name, root.plan);
        for (n, p) in self.stages {
            q = q.with_stage(&n, p);
        }
        q
    }
}

/// A plan under construction together with its output schema.
#[derive(Clone)]
pub struct Node {
    /// The physical plan built so far.
    pub plan: Plan,
    /// Output schema of `plan`.
    pub schema: Schema,
}

impl Node {
    /// Column reference by name.
    pub fn c(&self, name: &str) -> Expr {
        Expr::Col(self.schema.col(name))
    }

    /// Column position by name.
    pub fn i(&self, name: &str) -> usize {
        self.schema.col(name)
    }

    /// Appends a filter.
    pub fn filter(&self, predicate: Expr) -> Node {
        Node {
            plan: Plan::Select { input: Box::new(self.plan.clone()), predicate },
            schema: self.schema.clone(),
        }
    }

    /// Projection; the closure receives `self` for name resolution.
    pub fn project(&self, exprs: Vec<(Expr, &str)>) -> Node {
        let fields = exprs
            .iter()
            .map(|(e, n)| legobase_storage::Field::new(n, e.ty(&self.schema)))
            .collect();
        Node {
            plan: Plan::Project {
                input: Box::new(self.plan.clone()),
                exprs: exprs.into_iter().map(|(e, n)| (e, n.to_string())).collect(),
            },
            schema: Schema::new(fields),
        }
    }

    /// Equi-join by attribute names; for inner/outer joins the output schema
    /// is `self ++ right`.
    pub fn join(&self, right: Node, lk: &[&str], rk: &[&str], kind: JoinKind) -> Node {
        self.join_residual(right, lk, rk, kind, None)
    }

    /// Hash join with an additional residual predicate.
    pub fn join_residual(
        &self,
        right: Node,
        lk: &[&str],
        rk: &[&str],
        kind: JoinKind,
        residual: Option<Expr>,
    ) -> Node {
        let left_keys = lk.iter().map(|n| self.schema.col(n)).collect();
        let right_keys = rk.iter().map(|n| right.schema.col(n)).collect();
        let schema = match kind {
            JoinKind::Inner | JoinKind::LeftOuter => self.schema.concat(&right.schema),
            JoinKind::Semi | JoinKind::Anti => self.schema.clone(),
        };
        Node {
            plan: Plan::HashJoin {
                left: Box::new(self.plan.clone()),
                right: Box::new(right.plan),
                left_keys,
                right_keys,
                kind,
                residual,
            },
            schema,
        }
    }

    /// Grouped aggregation; output schema = group columns then aggregates.
    pub fn agg(&self, group: &[&str], aggs: Vec<(AggKind, Expr, &str)>) -> Node {
        let group_by: Vec<usize> = group.iter().map(|n| self.schema.col(n)).collect();
        let mut fields: Vec<legobase_storage::Field> =
            group_by.iter().map(|&i| self.schema.fields[i].clone()).collect();
        let specs: Vec<AggSpec> = aggs
            .into_iter()
            .map(|(k, e, n)| {
                let ty = match k {
                    AggKind::Count => legobase_storage::Type::Int,
                    AggKind::Avg => legobase_storage::Type::Float,
                    _ => e.ty(&self.schema),
                };
                fields.push(legobase_storage::Field::new(n, ty));
                AggSpec::new(k, e, n)
            })
            .collect();
        let plan = Plan::Agg { input: Box::new(self.plan.clone()), group_by, aggs: specs };
        Node { plan, schema: Schema::new(fields) }
    }

    /// Appends a sort by named columns.
    pub fn sort(&self, keys: &[(&str, SortOrder)]) -> Node {
        let keys = keys.iter().map(|(n, o)| (self.schema.col(n), *o)).collect();
        Node {
            plan: Plan::Sort { input: Box::new(self.plan.clone()), keys },
            schema: self.schema.clone(),
        }
    }

    /// Appends a row limit.
    pub fn limit(&self, n: usize) -> Node {
        Node {
            plan: Plan::Limit { input: Box::new(self.plan.clone()), n },
            schema: self.schema.clone(),
        }
    }

    /// Appends duplicate elimination.
    pub fn distinct(&self) -> Node {
        Node {
            plan: Plan::Distinct { input: Box::new(self.plan.clone()) },
            schema: self.schema.clone(),
        }
    }

    /// Cross join with a (typically single-row) node, implemented as an
    /// equi-join on an appended constant key — how flattened scalar
    /// subqueries (Q11, Q15, Q17, Q22) consume their aggregate stage.
    pub fn cross_join(&self, right: Node) -> Node {
        let l = self.append_const_key();
        let r = right.append_const_key();
        let mut joined = l.join(r, &["__k"], &["__k"], JoinKind::Inner);
        // Drop the two helper keys.
        let keep: Vec<(Expr, String)> = joined
            .schema
            .fields
            .iter()
            .enumerate()
            .filter(|(_, f)| f.name != "__k")
            .map(|(i, f)| (Expr::Col(i), f.name.clone()))
            .collect();
        let fields = keep
            .iter()
            .map(|(e, n)| legobase_storage::Field::new(n, e.ty(&joined.schema)))
            .collect();
        joined = Node {
            plan: Plan::Project { input: Box::new(joined.plan), exprs: keep },
            schema: Schema::new(fields),
        };
        joined
    }

    fn append_const_key(&self) -> Node {
        let mut exprs: Vec<(Expr, String)> = self
            .schema
            .fields
            .iter()
            .enumerate()
            .map(|(i, f)| (Expr::Col(i), f.name.clone()))
            .collect();
        exprs.push((Expr::lit(1i64), "__k".to_string()));
        let fields = exprs
            .iter()
            .map(|(e, n)| legobase_storage::Field::new(n, e.ty(&self.schema)))
            .collect();
        Node {
            plan: Plan::Project { input: Box::new(self.plan.clone()), exprs },
            schema: Schema::new(fields),
        }
    }
}

/// Resolves a column name over a *concatenated* join schema: looks in `l`
/// first, then in `r` (offset by `l`'s arity). Used for residual predicates.
pub fn jcol(l: &Node, r: &Node, name: &str) -> Expr {
    if let Some(i) = l.schema.index_of(name) {
        Expr::Col(i)
    } else {
        Expr::Col(l.schema.len() + r.schema.col(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legobase_engine::plan::SortOrder;
    use legobase_engine::CmpOp;

    fn ctx() -> Ctx {
        Ctx::new(&legobase_tpch::catalog())
    }

    #[test]
    fn names_resolve_through_operators() {
        let c = ctx();
        let n = c
            .scan("orders")
            .filter(Expr::cmp(CmpOp::Gt, Expr::Col(3), Expr::lit(0.0)))
            .agg(&["o_orderpriority"], vec![(AggKind::Count, Expr::lit(1i64), "n")])
            .sort(&[("n", SortOrder::Desc)]);
        assert_eq!(n.schema.fields[0].name, "o_orderpriority");
        assert_eq!(n.i("n"), 1);
    }

    #[test]
    fn join_concat_and_jcol() {
        let c = ctx();
        let l = c.scan("orders");
        let r = c.scan("customer");
        assert_eq!(jcol(&l, &r, "o_custkey"), Expr::Col(1));
        assert_eq!(jcol(&l, &r, "c_name"), Expr::Col(9 + 1));
        let j = l.join(r, &["o_custkey"], &["c_custkey"], JoinKind::Inner);
        assert_eq!(j.schema.len(), 9 + 8);
        assert_eq!(j.i("c_custkey"), 9);
    }

    #[test]
    fn cross_join_drops_helper_key() {
        let c = ctx();
        let l = c.scan("region");
        let r = c.scan("nation").agg(&[], vec![(AggKind::Count, Expr::lit(1i64), "n_nations")]);
        let x = l.cross_join(r);
        assert_eq!(x.schema.len(), 4);
        assert!(x.schema.index_of("__k").is_none());
        assert_eq!(x.i("n_nations"), 3);
    }

    #[test]
    fn stages_register() {
        let mut c = ctx();
        let s = c.scan("nation").agg(&[], vec![(AggKind::Count, Expr::lit(1i64), "n")]);
        c.stage("counts", s);
        let root = c.scan("#counts");
        assert_eq!(root.schema.fields[0].name, "n");
        let q = c.build("t", root);
        assert_eq!(q.stages.len(), 1);
    }
}
