#![warn(missing_docs)]
//! Physical plans for the full TPC-H workload (Q1–Q22).
//!
//! As in the paper (Section 2.1), traditional query optimization — join
//! ordering in particular — is treated as an orthogonal problem: each query
//! is written directly as the physical plan a conventional optimizer would
//! produce, using the plan-builder DSL in [`builder`]. Scalar and correlated
//! subqueries are flattened into materialized stages, which is what the
//! commercial optimizer the paper borrows plans from does as well.
//!
//! Every query is a [`legobase_engine::QueryPlan`] and runs unmodified
//! under every engine configuration — and, in the specialized engine, under
//! every morsel-driven parallelism degree; the cross-engine equality tests
//! in `tests/` use this property as the correctness oracle. The join-heavy
//! majority of the workload (all but the single-table Q1/Q6) additionally
//! exercises the parallel partitioned join and sort paths described in
//! DESIGN.md §3.

pub mod builder;
mod queries;

pub use queries::{all_queries, query, QUERY_NAMES};
