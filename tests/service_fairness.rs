//! Fair per-tenant scheduling and cooperative deadlines (DESIGN.md §3f).
//!
//! The shared morsel pool grants help by weighted deficit round-robin
//! across tenants, so one tenant's flood cannot monopolize the workers a
//! point query needs (the drain-order mechanics are pinned by the unit
//! tests in `engine::pool`; this suite exercises the service-level
//! contract). Deadlines cancel cooperatively at morsel boundaries and
//! surface as the typed `QueryError::DeadlineExceeded` — and neither
//! fairness nor cancellation may ever change result bytes.

use legobase::sql::tpch_sql;
use legobase::{wire, LegoBase, QueryError, QueryRequest, ServeOptions, Settings};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

const SCALE: f64 = 0.002;

fn par4(sql: &str) -> QueryRequest {
    QueryRequest::sql(sql).with_settings(Settings::optimized().with_parallelism(4))
}

/// A 256-query flood from one tenant while another tenant runs a single
/// point query: the point query must complete while the flood is still in
/// flight (WDRR interleaves its morsel grants with the flood's instead of
/// queueing behind all 256 jobs), produce oracle-identical bytes, and every
/// flood query must still succeed.
#[test]
fn flood_of_256_queries_cannot_starve_a_point_tenant() {
    let oracle = LegoBase::generate(SCALE);
    let expect =
        wire::encode_batch(oracle.query(&par4(tpch_sql(6))).expect("oracle Q6").result.rows());

    let service = LegoBase::generate(SCALE).serve_with(ServeOptions::default().with_workers(3));
    let flood = service.session(); // tenant A: the noisy neighbor
    let point = service.session().with_weight(4); // tenant B: latency-sensitive
    assert_ne!(flood.tenant(), point.tenant(), "sessions are distinct tenants");

    let started = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let flood = &flood;
            let (started, done) = (&started, &done);
            scope.spawn(move || {
                for _ in 0..32 {
                    started.fetch_add(1, Ordering::SeqCst);
                    flood.query(&par4(tpch_sql(1))).expect("flood query");
                    done.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
        // Let the flood saturate the pool before the point query arrives.
        while started.load(Ordering::SeqCst) < 8 {
            std::thread::yield_now();
        }
        let resp = point.query(&par4(tpch_sql(6))).expect("point query");
        let drained = done.load(Ordering::SeqCst);
        assert!(
            drained < 256,
            "point query must not wait out the whole flood (flood had fully drained)"
        );
        assert_eq!(
            wire::encode_batch(resp.result.rows()),
            expect,
            "fair scheduling must be invisible in result bytes"
        );
    });

    let stats = service.stats();
    assert_eq!(stats.queries_ok, 257, "flood + point query all served");
    assert_eq!(stats.queries_panicked + stats.queries_expired, 0);
    service.shutdown();
}

/// The FIFO-recovery ablation: with every tenant at equal weight (the
/// default), a single tenant's jobs drain in plain submission order —
/// WDRR degenerates to exactly the old FIFO pool (pinned at the queue
/// level by `engine::pool`'s `wdrr_single_tenant_is_fifo` and
/// `wdrr_equal_weights_recover_fifo` tests). At the service level the
/// observable contract is: default weights, interleaved tenants, and
/// results still bit-identical to the serial oracle.
#[test]
fn equal_weights_recover_fifo_and_change_nothing_observable() {
    let oracle = LegoBase::generate(SCALE);
    let expected: Vec<Vec<u8>> = (1..=22)
        .map(|n| {
            wire::encode_batch(oracle.query(&par4(tpch_sql(n))).expect("oracle").result.rows())
        })
        .collect();

    let options = ServeOptions::default().with_workers(3);
    assert_eq!(options.default_weight, 1, "equal weights are the default");
    let service = LegoBase::generate(SCALE).serve_with(options);
    std::thread::scope(|scope| {
        for offset in 0..2usize {
            let (service, expected) = (&service, &expected);
            scope.spawn(move || {
                let session = service.session(); // default weight: 1
                for k in (offset..22).step_by(2) {
                    let resp = session.query(&par4(tpch_sql(k + 1))).expect("service query");
                    assert_eq!(
                        wire::encode_batch(resp.result.rows()),
                        expected[k],
                        "Q{} diverged under equal-weight scheduling",
                        k + 1
                    );
                }
            });
        }
    });
    assert_eq!(service.stats().queries_ok, 22);
    service.shutdown();
}

/// Deadlines are typed, counted, and cancel partial work without harming
/// the service: an impossible deadline yields `DeadlineExceeded` (never a
/// panic, never a wedged pool), and the very next query on the same
/// service completes with oracle-identical bytes.
#[test]
fn expired_deadline_is_typed_and_the_pool_survives() {
    let service = LegoBase::generate(SCALE).serve_with(ServeOptions::default().with_workers(2));
    let session = service.session();
    match session.query(&par4(tpch_sql(1)).with_deadline(Duration::from_nanos(1))) {
        Err(QueryError::DeadlineExceeded { query, deadline, .. }) => {
            assert!(!query.is_empty());
            assert_eq!(deadline, Duration::from_nanos(1));
        }
        Err(other) => panic!("expected DeadlineExceeded, got {other}"),
        Ok(_) => panic!("a 1ns deadline cannot complete"),
    }
    let stats = service.stats();
    assert_eq!(stats.queries_expired, 1, "expiry is counted, not conflated with panics");
    assert_eq!(stats.queries_panicked, 0);

    // Same pool, same session: a generous deadline completes identically
    // to no deadline at all.
    let with = session
        .query(&par4(tpch_sql(6)).with_deadline(Duration::from_secs(300)))
        .expect("generous deadline");
    let without = session.query(&par4(tpch_sql(6))).expect("no deadline");
    assert_eq!(
        wire::encode_batch(with.result.rows()),
        wire::encode_batch(without.result.rows()),
        "a deadline that does not fire must be invisible in result bytes"
    );
    service.shutdown();
}

/// Deadline expiry during *admission* (a full service, not a slow query)
/// is the same typed error: queueing time counts against the deadline, so
/// a flooded service declines instead of blocking the client forever.
#[test]
fn admission_queueing_counts_against_the_deadline() {
    let service = LegoBase::generate(SCALE)
        .serve_with(ServeOptions::default().with_workers(2).with_max_in_flight(1));
    let gate_open = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let service = &service;
        let gate_open = &gate_open;
        // Occupy the single in-flight slot with a long-ish query burst.
        scope.spawn(move || {
            let session = service.session();
            gate_open.fetch_add(1, Ordering::SeqCst);
            for _ in 0..20 {
                session.query(&par4(tpch_sql(1))).expect("occupier");
            }
        });
        while gate_open.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        let session = service.session();
        // With the slot held, a tiny deadline expires while queueing.
        let mut saw_expiry = false;
        for _ in 0..50 {
            match session.query(&par4(tpch_sql(6)).with_deadline(Duration::from_micros(50))) {
                Err(QueryError::DeadlineExceeded { .. }) => {
                    saw_expiry = true;
                    break;
                }
                Ok(_) => continue, // got the slot before expiry — try again
                Err(other) => panic!("unexpected error while queueing: {other}"),
            }
        }
        assert!(saw_expiry, "a 50µs deadline must expire in admission at least once");
    });
    service.shutdown();
}
