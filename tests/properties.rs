//! Cross-crate property tests: for randomly generated predicates and
//! aggregations over the TPC-H data, the interpreted Volcano engine and the
//! fully specialized executor must agree. This exercises the whole stack —
//! plan construction, SC compilation (specialization derivation), loading
//! (dictionaries, partitions, indexes), kernels, and execution — on inputs
//! no hand-written test would think of.

use legobase::engine::expr::AggKind;
use legobase::engine::plan::{AggSpec, JoinKind, Plan, QueryPlan, SortOrder};
use legobase::engine::Expr;
use legobase::storage::{Date, Value};
use legobase::{Config, LegoBase};
use proptest::prelude::*;
use std::sync::OnceLock;

fn system() -> &'static LegoBase {
    static SYSTEM: OnceLock<LegoBase> = OnceLock::new();
    SYSTEM.get_or_init(|| LegoBase::generate(0.002))
}

/// A random predicate over lineitem attributes, always type-correct.
fn arb_lineitem_pred() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        // l_quantity comparisons
        (0.0f64..55.0, 0usize..4).prop_map(|(v, op)| cmp(op, Expr::col(4), Expr::lit(v))),
        // l_discount range
        (0.0f64..0.11).prop_map(|v| Expr::ge(Expr::col(6), Expr::lit(v))),
        // l_shipdate ranges (date-index path)
        (1992i32..1999, 1u32..13)
            .prop_map(|(y, m)| { Expr::ge(Expr::col(10), Expr::lit(Date::from_ymd(y, m, 1))) }),
        (1992i32..1999)
            .prop_map(|y| { Expr::lt(Expr::col(10), Expr::lit(Date::from_ymd(y, 12, 28))) }),
        // string predicates on l_shipmode / l_returnflag (dictionary path)
        prop_oneof![Just("MAIL"), Just("SHIP"), Just("AIR"), Just("RAIL"), Just("NOPE")]
            .prop_map(|s| Expr::eq(Expr::col(14), Expr::lit(s))),
        prop_oneof![Just("R"), Just("N"), Just("A")]
            .prop_map(|s| Expr::ne(Expr::col(8), Expr::lit(s))),
        // l_shipinstruct prefix (ordered-dictionary path)
        prop_oneof![Just("DELIVER"), Just("TAKE"), Just("CO")]
            .prop_map(|p| Expr::starts_with(Expr::col(13), p)),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::or(a, b)),
            inner.prop_map(Expr::not),
        ]
    })
}

fn cmp(op: usize, a: Expr, b: Expr) -> Expr {
    match op {
        0 => Expr::lt(a, b),
        1 => Expr::le(a, b),
        2 => Expr::gt(a, b),
        _ => Expr::ge(a, b),
    }
}

/// Builds a full query around the random predicate: filter, join with
/// orders, group, aggregate, sort.
fn query_for(pred: Expr, group_col: usize, join: bool) -> QueryPlan {
    let filtered = Plan::Select { input: Box::new(Plan::scan("lineitem")), predicate: pred };
    let input = if join {
        Plan::HashJoin {
            left: Box::new(filtered),
            right: Box::new(Plan::scan("orders")),
            left_keys: vec![0],
            right_keys: vec![0],
            kind: JoinKind::Inner,
            residual: None,
        }
    } else {
        filtered
    };
    let agg = Plan::Agg {
        input: Box::new(input),
        group_by: vec![group_col],
        aggs: vec![
            AggSpec::new(AggKind::Count, Expr::lit(1i64), "n"),
            AggSpec::new(AggKind::Sum, Expr::col(5), "sum_price"),
            AggSpec::new(
                AggKind::Avg,
                Expr::mul(Expr::col(5), Expr::sub(Expr::lit(1.0), Expr::col(6))),
                "avg_disc_price",
            ),
        ],
    };
    QueryPlan::new("prop", Plan::Sort { input: Box::new(agg), keys: vec![(0, SortOrder::Asc)] })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Volcano (interpreted, generic) ≡ OptC (compiled, specialized) for
    /// random filter+group+agg queries over lineitem.
    #[test]
    fn random_aggregations_agree(pred in arb_lineitem_pred(), group in prop_oneof![Just(8usize), Just(9), Just(14)]) {
        let system = system();
        let q = query_for(pred, group, false);
        let reference = system.run_plan(&q, &Config::Dbx.settings());
        for config in [Config::TpchC, Config::StrDictC, Config::OptC, Config::OptScala] {
            let got = system.run_plan(&q, &config.settings());
            prop_assert!(
                got.result.approx_eq(&reference.result, 1e-6),
                "{config:?}: {}",
                got.result.diff(&reference.result, 1e-6).unwrap_or_default()
            );
        }
    }

    /// Same with a join against orders in the middle (partitioned-join and
    /// PK-index paths).
    #[test]
    fn random_join_aggregations_agree(pred in arb_lineitem_pred()) {
        let system = system();
        let q = query_for(pred, 14, true);
        let reference = system.run_plan(&q, &Config::Dbx.settings());
        for config in [Config::HyPerLike, Config::OptC] {
            let got = system.run_plan(&q, &config.settings());
            prop_assert!(
                got.result.approx_eq(&reference.result, 1e-6),
                "{config:?}: {}",
                got.result.diff(&reference.result, 1e-6).unwrap_or_default()
            );
        }
    }

    /// The SC pipeline's C output for random queries is always non-empty and
    /// structurally complete (one function per query).
    #[test]
    fn random_queries_compile_to_c(pred in arb_lineitem_pred()) {
        let system = system();
        let q = query_for(pred, 9, false);
        let result = legobase::sc::compile(&q, &system.data.catalog, &legobase::Settings::optimized());
        prop_assert!(result.c_source.contains("void prop(void)"));
        prop_assert!(result.trace.len() >= 8);
    }
}

/// Pin Value total-order invariants at the integration level (the engines
/// rely on them for sorting and grouping).
#[test]
fn value_order_hash_consistency() {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let vals = [
        Value::Null,
        Value::Int(-3),
        Value::Int(3),
        Value::Float(3.0),
        Value::Float(3.5),
        Value::from("a"),
        Value::Date(Date::from_ymd(1995, 1, 1)),
        Value::Bool(true),
    ];
    for a in &vals {
        for b in &vals {
            if a == b {
                let h = |v: &Value| {
                    let mut s = DefaultHasher::new();
                    v.hash(&mut s);
                    s.finish()
                };
                assert_eq!(h(a), h(b), "{a:?} == {b:?} but hashes differ");
            }
            // Antisymmetry.
            assert_eq!(a.cmp(b), b.cmp(a).reverse());
        }
    }
}
