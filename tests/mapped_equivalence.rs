//! Mapped archive loads are a pure representation change: a database
//! loaded through `archive::read_mapped` (v3 packed columns borrowed
//! zero-copy from the page cache, the encoded-column loader adopting them
//! instead of re-encoding) must return **bit-identical** rows to the same
//! archive loaded through the plain `archive::read` path — for every TPC-H
//! query, under every engine configuration of Table III, and at
//! parallelism 4. The writer's `from_values` and the loader's re-encode
//! derive the same frame-of-reference representation, so any divergence
//! here means the mapping layer corrupted or misread the words.

use legobase::tpch::archive;
use legobase::{Config, LegoBase};

const SCALE: f64 = 0.002;

/// Loads the same freshly written v3 archive twice — once plain, once
/// mapped — and wraps both in system façades. The `tag` keeps the temp
/// files of concurrently running tests apart.
fn systems(tag: &str) -> (LegoBase, LegoBase) {
    let dir = std::env::temp_dir().join("legobase-mapped-equivalence");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("tpch-{tag}-{}.lbca", std::process::id()));
    let data = legobase::tpch::TpchData::generate(SCALE);
    archive::write(&data, &path).expect("write archive");
    let plain = archive::read(&path).expect("read");
    let mapped = archive::read_mapped(&path).expect("read_mapped");
    assert!(mapped.mapped_bytes() > 0, "a v3 load should borrow packed words zero-copy");
    assert_eq!(plain.mapped_bytes(), 0, "the plain path owns everything");
    // The mapping outlives the file on unix; unlinking here also proves no
    // code path re-opens the path behind the mapping's back.
    std::fs::remove_file(&path).ok();
    (LegoBase::from_data(plain), LegoBase::from_data(mapped))
}

fn check_mapped(tag: &str, range: impl Iterator<Item = usize>) {
    let (plain, mapped) = systems(tag);
    for n in range {
        for config in Config::ALL {
            let a = plain.run(n, config);
            let b = mapped.run(n, config);
            assert!(
                a.result.0.rows == b.result.0.rows,
                "Q{n} under {config:?}: mapped load diverges from read load: {}",
                a.result.diff(&b.result, 0.0).unwrap_or_default()
            );
        }
        let par4 = legobase::Settings::optimized().with_parallelism(4);
        let a = plain.run_with_settings(n, &par4);
        let b = mapped.run_with_settings(n, &par4);
        assert!(
            a.result.0.rows == b.result.0.rows,
            "Q{n}: mapped and read loads diverge at parallelism 4"
        );
    }
}

#[test]
fn q1_to_q6_mapped_matches_read() {
    check_mapped("q1-6", 1..=6);
}

#[test]
fn q7_to_q12_mapped_matches_read() {
    check_mapped("q7-12", 7..=12);
}

#[test]
fn q13_to_q17_mapped_matches_read() {
    check_mapped("q13-17", 13..=17);
}

#[test]
fn q18_to_q22_mapped_matches_read() {
    check_mapped("q18-22", 18..=22);
}
