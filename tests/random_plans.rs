//! Randomized cross-engine equivalence: property-based plan generation.
//!
//! The repo's strongest correctness oracle is that every engine
//! configuration computes identical results. The TPC-H queries and the
//! hand-written edge cases pin 22+10 plan shapes; this suite generates
//! *random* plans — scans, filters, joins along real key relationships,
//! grouped and global aggregations, sorts and limits — and checks that the
//! fully specialized executor (with partitioning, hash-map lowering,
//! dictionaries, column layout, code motion) agrees with the interpreted
//! Volcano baseline on every one of them.

use legobase::engine::expr::{AggKind, CmpOp, Expr};
use legobase::engine::plan::{AggSpec, JoinKind, Plan, QueryPlan, SortOrder};
use legobase::storage::{Date, Value};
use legobase::{Config, LegoBase};
use proptest::prelude::*;
use std::sync::OnceLock;

fn system() -> &'static LegoBase {
    static SYSTEM: OnceLock<LegoBase> = OnceLock::new();
    SYSTEM.get_or_init(|| LegoBase::generate(0.002))
}

/// A filterable column: (index, literal generator domain).
#[derive(Clone, Debug)]
enum Lit {
    Int(i64, i64),
    Float(f64, f64),
    Date(i32, i32), // years
}

/// Per-table filter and aggregation column menus (index, domain).
fn table_menu(table: &str) -> (Vec<(usize, Lit)>, Vec<usize>, Vec<usize>) {
    // (filter columns, group-by columns, numeric agg columns)
    match table {
        "customer" => (
            vec![(0, Lit::Int(1, 400)), (3, Lit::Int(0, 24)), (5, Lit::Float(-1000.0, 10000.0))],
            vec![3],
            vec![0, 5],
        ),
        "orders" => (
            vec![
                (0, Lit::Int(1, 1600)),
                (1, Lit::Int(1, 400)),
                (3, Lit::Float(1000.0, 400_000.0)),
                (4, Lit::Date(1992, 1999)),
                (7, Lit::Int(0, 1)),
            ],
            vec![1, 7],
            vec![3, 7],
        ),
        "nation" => (vec![(0, Lit::Int(0, 24)), (2, Lit::Int(0, 4))], vec![2], vec![0, 2]),
        "lineitem" => (
            vec![
                (0, Lit::Int(1, 1600)),
                (4, Lit::Float(1.0, 50.0)),
                (6, Lit::Float(0.0, 0.1)),
                (10, Lit::Date(1992, 1999)),
            ],
            vec![8, 9], // l_returnflag, l_linestatus (dictionary group keys)
            vec![4, 5],
        ),
        other => panic!("no menu for {other}"),
    }
}

fn arb_predicate(table: &'static str) -> impl Strategy<Value = Expr> {
    let (filters, _, _) = table_menu(table);
    let one = (0..filters.len(), 0usize..4, 0.0f64..1.0).prop_map(move |(i, op, frac)| {
        let (col, lit) = &filters[i];
        let op = [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge][op];
        let value = match lit {
            Lit::Int(lo, hi) => Value::Int(lo + ((hi - lo) as f64 * frac) as i64),
            Lit::Float(lo, hi) => Value::Float(lo + (hi - lo) * frac),
            Lit::Date(lo, hi) => Value::Date(Date::from_ymd(
                lo + ((hi - lo) as f64 * frac) as i32,
                1 + (frac * 11.0) as u32,
                1,
            )),
        };
        Expr::cmp(op, Expr::col(*col), Expr::lit(value))
    });
    proptest::collection::vec(one, 1..3).prop_map(Expr::all)
}

/// A random source: a filtered scan of one table, or a join along a real
/// PK/FK relationship (with independent filters on both sides).
#[derive(Clone, Debug)]
struct Source {
    plan: Plan,
    /// Which base table's menu applies to the output prefix.
    agg_table: &'static str,
    /// Offset of that table's columns in the join output.
    offset: usize,
}

fn arb_source() -> impl Strategy<Value = Source> {
    let single = proptest::sample::select(vec!["customer", "orders", "nation", "lineitem"])
        .prop_flat_map(|t: &'static str| {
            (Just(t), arb_predicate(t), any::<bool>()).prop_map(|(t, pred, filtered)| Source {
                plan: if filtered {
                    Plan::Select { input: Box::new(Plan::scan(t)), predicate: pred }
                } else {
                    Plan::scan(t)
                },
                agg_table: t,
                offset: 0,
            })
        });
    // Join menu: (left, right, lkey, rkey, left arity, residual column pair).
    // The residual column pair is a numeric left column and a numeric right
    // column whose `<` comparison over the concatenated row makes a
    // non-trivial non-equi condition.
    let join = (
        proptest::sample::select(vec![
            ("customer", "orders", 0usize, 1usize, 8usize, (0usize, 0usize)),
            ("nation", "customer", 0usize, 3usize, 4usize, (0usize, 0usize)),
            ("orders", "lineitem", 0usize, 0usize, 9usize, (3usize, 5usize)),
        ]),
        any::<bool>(),
        0usize..4,
        0usize..3,
    )
        .prop_flat_map(
            |((lt, rt, lk, rk, l_arity, res_cols), filter_right, kind, residual)| {
                let kind =
                    [JoinKind::Inner, JoinKind::LeftOuter, JoinKind::Semi, JoinKind::Anti][kind];
                (
                    Just((lt, rt, lk, rk, l_arity, res_cols, kind, residual)),
                    arb_predicate(rt),
                    Just(filter_right),
                )
                    .prop_map(
                        |(
                            (lt, rt, lk, rk, l_arity, res_cols, kind, residual),
                            rpred,
                            filter_right,
                        )| {
                            let right: Plan = if filter_right {
                                Plan::Select { input: Box::new(Plan::scan(rt)), predicate: rpred }
                            } else {
                                Plan::scan(rt)
                            };
                            // A third of the joins carry a residual: left.col <
                            // right.col over the concatenated schema.
                            let residual = (residual == 0).then(|| {
                                Expr::lt(Expr::col(res_cols.0), Expr::col(l_arity + res_cols.1))
                            });
                            Source {
                                plan: Plan::HashJoin {
                                    left: Box::new(Plan::scan(lt)),
                                    right: Box::new(right),
                                    left_keys: vec![lk],
                                    right_keys: vec![rk],
                                    kind,
                                    residual,
                                },
                                // Semi/anti joins emit only left columns; inner and
                                // outer prepend them. Either way the left table's
                                // menu applies at offset 0.
                                agg_table: lt,
                                offset: 0,
                            }
                        },
                    )
            },
        );
    prop_oneof![3 => single, 2 => join]
}

/// Wraps a source in a random consumer: aggregate (grouped or global),
/// distinct projection, or sort+limit.
fn arb_query() -> impl Strategy<Value = QueryPlan> {
    (arb_source(), 0usize..3, any::<bool>(), 1usize..20).prop_map(
        |(src, consumer, grouped, limit)| {
            let (_, group_cols, agg_cols) = table_menu(src.agg_table);
            let plan = match consumer {
                // Aggregation.
                0 => {
                    let aggs = vec![
                        AggSpec::new(AggKind::Count, Expr::lit(1i64), "n"),
                        AggSpec::new(AggKind::Sum, Expr::col(src.offset + agg_cols[0]), "s0"),
                        AggSpec::new(
                            AggKind::Min,
                            Expr::col(src.offset + agg_cols[agg_cols.len() - 1]),
                            "m",
                        ),
                    ];
                    let group_by = if grouped { vec![src.offset + group_cols[0]] } else { vec![] };
                    let agg = Plan::Agg { input: Box::new(src.plan), group_by, aggs };
                    if grouped {
                        Plan::Sort { input: Box::new(agg), keys: vec![(0, SortOrder::Asc)] }
                    } else {
                        agg
                    }
                }
                // Distinct over a small projection.
                1 => Plan::Distinct {
                    input: Box::new(Plan::Project {
                        input: Box::new(src.plan),
                        exprs: vec![(Expr::col(src.offset + group_cols[0]), "k".into())],
                    }),
                },
                // Sort + limit (top-k) over the group column.
                _ => Plan::Limit {
                    input: Box::new(Plan::Sort {
                        input: Box::new(Plan::Agg {
                            input: Box::new(src.plan),
                            group_by: vec![src.offset + group_cols[0]],
                            aggs: vec![AggSpec::new(AggKind::Count, Expr::lit(1i64), "n")],
                        }),
                        keys: vec![(1, SortOrder::Desc), (0, SortOrder::Asc)],
                    }),
                    n: limit,
                },
            };
            QueryPlan::new("random", plan)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every random plan computes the same result under the interpreted
    /// Volcano baseline, both push-engine variants, the HyPer-style
    /// configuration, and the fully optimized specialized executor
    /// (compiled and interpreted variants).
    #[test]
    fn engines_agree_on_random_plans(q in arb_query()) {
        let sys = system();
        let reference = sys.run_plan(&q, &Config::Dbx.settings()).result;
        for cfg in [
            Config::NaiveC,
            Config::TpchC,
            Config::HyPerLike,
            Config::OptC,
            Config::OptScala,
        ] {
            let got = sys.run_plan(&q, &cfg.settings()).result;
            prop_assert!(
                got.approx_eq(&reference, 1e-6),
                "{:?} disagrees with DBX on {:#?}: {:?}",
                cfg,
                q.root,
                got.diff(&reference, 1e-6)
            );
        }
    }

    /// Morsel-driven parallelism must be invisible in the results of random
    /// plans too: every degree agrees with serial execution (1e-9 — only
    /// floating-point reassociation separates them), and degrees ≥ 2 are
    /// bit-identical to each other (fixed morsel boundaries, ordered
    /// merges). Runs under both the compiled and the interpreted executor.
    #[test]
    fn parallel_degrees_agree_on_random_plans(q in arb_query()) {
        let sys = system();
        for base in [Config::OptC, Config::OptScala] {
            let serial = sys.run_plan(&q, &base.settings()).result;
            let mut by_degree = Vec::new();
            for degree in [2usize, 4] {
                let got = sys.run_plan(&q, &base.settings().with_parallelism(degree)).result;
                prop_assert!(
                    got.approx_eq(&serial, 1e-9),
                    "{:?} degree {} disagrees with serial on {:#?}: {:?}",
                    base,
                    degree,
                    q.root,
                    got.diff(&serial, 1e-9)
                );
                by_degree.push(got);
            }
            prop_assert!(
                by_degree[0].sorted_rows() == by_degree[1].sorted_rows(),
                "{:?}: degrees 2 and 4 not bit-identical on {:#?}",
                base,
                q.root
            );
        }
    }
}
