//! The TCP front door's headline guarantee: a query served over loopback
//! `legobase-wire-v1` returns results **bit-identical** to the in-process
//! surfaces — all 22 TPC-H queries under all 8 named configurations of
//! Table III (CI re-runs the suite under `LEGOBASE_PARALLELISM=4`, pushing
//! every remote execution through the shared morsel pool).
//!
//! "Bit-identical" is checked on the wire encoding itself: floats travel as
//! raw IEEE bits, so comparing encoded batches is equality down to the last
//! mantissa bit — strictly stronger than `Value` equality, which treats
//! `Int(42)` and `Float(42.0)` as equal.

use legobase::client::Client;
use legobase::sql::tpch_sql;
use legobase::{wire, Config, LegoBase, QueryRequest, ServeOptions};

const SCALE: f64 = 0.002;

#[test]
fn all_queries_and_configs_bit_identical_over_loopback() {
    let oracle = LegoBase::generate(SCALE);
    let server = LegoBase::generate(SCALE)
        .serve_tcp("127.0.0.1:0", ServeOptions::default().with_workers(3))
        .expect("bind ephemeral port");

    // Two concurrent connections so distinct tenants interleave on the
    // shared pool while we compare — the substrate must stay invisible.
    std::thread::scope(|scope| {
        for (offset, stride) in [(0usize, 2usize), (1, 2)] {
            let oracle = &oracle;
            let addr = server.local_addr();
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for ci in 0..Config::ALL.len() {
                    let config = Config::ALL[(ci + offset) % Config::ALL.len()];
                    for k in (offset..22).step_by(stride) {
                        let n = k + 1;
                        let expect = oracle
                            .run_sql(tpch_sql(n), config)
                            .unwrap_or_else(|e| panic!("oracle Q{n} {config:?}: {e}"))
                            .result;
                        let got = client
                            .run(&QueryRequest::sql(tpch_sql(n)).with_config(config))
                            .unwrap_or_else(|e| panic!("wire Q{n} {config:?}: {e}"))
                            .result;
                        assert_eq!(
                            wire::encode_batch(got.rows()),
                            wire::encode_batch(expect.rows()),
                            "Q{n} under {config:?}: loopback result diverges from in-process"
                        );
                    }
                }
            });
        }
    });

    let stats = server.stats();
    assert_eq!(stats.queries_ok, 176, "8 configs x 22 queries all served over TCP");
    assert_eq!(stats.queries_panicked + stats.queries_rejected + stats.queries_expired, 0);
    server.shutdown();
}

/// The wire surface agrees with the *unified* in-process surfaces too: for
/// a sample of queries, facade `query()`, session `query()`, and the TCP
/// client produce the same bytes and consistent metadata.
#[test]
fn three_surfaces_one_result() {
    let facade = LegoBase::generate(SCALE);
    let service = LegoBase::generate(SCALE).serve_with(ServeOptions::default().with_workers(2));
    let session = service.session();
    let server = LegoBase::generate(SCALE)
        .serve_tcp("127.0.0.1:0", ServeOptions::default().with_workers(2))
        .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    for n in [1usize, 6, 14, 19] {
        let req = QueryRequest::sql(tpch_sql(n));
        let a = facade.query(&req).unwrap_or_else(|e| panic!("facade Q{n}: {e}")).result;
        let b = session.query(&req).unwrap_or_else(|e| panic!("session Q{n}: {e}")).result;
        let c = client.run(&req).unwrap_or_else(|e| panic!("wire Q{n}: {e}")).result;
        let bytes = wire::encode_batch(a.rows());
        assert_eq!(wire::encode_batch(b.rows()), bytes, "Q{n}: session diverges");
        assert_eq!(wire::encode_batch(c.rows()), bytes, "Q{n}: wire diverges");
        assert_eq!(a.0.schema, c.0.schema, "Q{n}: schema must cross the wire intact");
    }
    // Second pass over the wire: the remote session's caches engage and the
    // cache flags propagate back through the response header.
    let resp = client.run(&QueryRequest::sql(tpch_sql(6))).unwrap();
    assert!(resp.plan_cached, "second run of the same text hits the remote plan cache");
    assert!(resp.prepared_cached, "…and the remote prepared cache");
    server.shutdown();
    service.shutdown();
}
