//! Admission control and failure isolation: over-budget queries get a
//! *typed* rejection while concurrent tenants finish untouched; a panicking
//! kernel in one session comes back as a typed error and never poisons the
//! shared pool; a concurrency ceiling serializes admission without losing
//! queries; a shut-down service declines rather than deadlocks.

use legobase::engine::plan::{Plan, QueryPlan};
use legobase::sql::tpch_sql;
use legobase::{Config, LegoBase, ServeOptions, ServiceError};

const SCALE: f64 = 0.002;

/// A 1-byte budget rejects any real query with `OverBudget` — while an
/// unbudgeted session on the same service completes the same query
/// correctly, concurrently.
#[test]
fn over_budget_rejected_while_concurrent_queries_finish() {
    let oracle = LegoBase::generate(SCALE).run_sql(tpch_sql(6), Config::OptC).expect("oracle Q6");
    let service = LegoBase::generate(SCALE).serve_with(ServeOptions::default().with_workers(2));

    std::thread::scope(|scope| {
        let svc = &service;
        let ok = scope.spawn(move || svc.session().run_sql(tpch_sql(6), Config::OptC));
        let rejected = scope
            .spawn(move || svc.session().with_memory_budget(1).run_sql(tpch_sql(6), Config::OptC));

        let out = ok.join().expect("no panic").expect("unbudgeted session must succeed");
        assert!(out.result.rows() == oracle.result.rows());
        match rejected.join().expect("no panic") {
            Err(ServiceError::OverBudget { estimated_bytes, budget_bytes, query }) => {
                assert_eq!(budget_bytes, 1);
                assert!(estimated_bytes > budget_bytes);
                assert!(query.contains("lineitem"), "rejection names the query");
            }
            Ok(_) => panic!("1-byte budget admitted a full scan"),
            Err(e) => panic!("expected OverBudget, got: {e}"),
        }
    });

    let stats = service.stats();
    assert_eq!(stats.queries_rejected, 1);
    assert_eq!(stats.queries_ok, 1);

    // A generous budget admits the same query on the same service.
    let out = service
        .session()
        .with_memory_budget(1 << 32)
        .run_sql(tpch_sql(6), Config::OptC)
        .expect("generous budget");
    assert!(out.result.rows() == oracle.result.rows());
}

/// A plan that panics in the engine (unknown table) yields a typed
/// `QueryPanicked` — and the service keeps serving parallel queries through
/// the same shared pool afterwards, round after round.
#[test]
fn panicking_plan_is_typed_and_does_not_poison_the_pool() {
    let oracle_sys = LegoBase::generate(SCALE);
    let settings = Config::OptC.settings().with_parallelism(4);
    let oracle = oracle_sys.run_sql_with_settings(tpch_sql(1), &settings).expect("oracle Q1");

    let service = LegoBase::generate(SCALE).serve_with(ServeOptions::default().with_workers(2));
    let bogus = QueryPlan::new("bogus", Plan::scan("no_such_table"));
    for round in 0..3 {
        match service.session().run_plan(&bogus, &Config::OptC.settings()) {
            Err(ServiceError::QueryPanicked { query, message }) => {
                assert_eq!(query, "bogus");
                assert!(message.contains("no_such_table"), "round {round}: payload lost");
            }
            Ok(_) => panic!("round {round}: unknown-table plan executed"),
            Err(e) => panic!("round {round}: expected QueryPanicked, got: {e}"),
        }
        // The pool still serves degree-4 work, bit-identical as ever.
        let out = service
            .session()
            .run_sql_with_settings(tpch_sql(1), &settings)
            .unwrap_or_else(|e| panic!("round {round}: pool poisoned? {e}"));
        assert!(out.result.rows() == oracle.result.rows(), "round {round}");
    }
    assert_eq!(service.stats().queries_panicked, 3);
    assert_eq!(service.stats().queries_ok, 3);
}

/// Panicking and healthy sessions interleaved *concurrently*: every healthy
/// query still matches the oracle while another tenant's kernel keeps
/// panicking on the same shared pool.
#[test]
fn concurrent_panics_and_healthy_queries_coexist() {
    let oracle_sys = LegoBase::generate(SCALE);
    let settings = Config::OptC.settings().with_parallelism(4);
    let oracle = oracle_sys.run_sql_with_settings(tpch_sql(6), &settings).expect("oracle Q6");

    let service = LegoBase::generate(SCALE).serve_with(ServeOptions::default().with_workers(2));
    std::thread::scope(|scope| {
        let svc = &service;
        for _ in 0..2 {
            scope.spawn(move || {
                let bogus = QueryPlan::new("bogus", Plan::scan("no_such_table"));
                for _ in 0..4 {
                    let r = svc.session().run_plan(&bogus, &Config::OptC.settings());
                    assert!(matches!(r, Err(ServiceError::QueryPanicked { .. })));
                }
            });
        }
        for _ in 0..2 {
            let oracle = &oracle;
            scope.spawn(move || {
                let session = svc.session();
                for _ in 0..4 {
                    let out = session
                        .run_sql_with_settings(tpch_sql(6), &settings)
                        .expect("healthy tenant");
                    assert!(out.result.rows() == oracle.result.rows());
                }
            });
        }
    });
    let stats = service.stats();
    assert_eq!(stats.queries_panicked, 8);
    assert_eq!(stats.queries_ok, 8);
}

/// `max_in_flight = 1` admits one query at a time; blocked sessions wait
/// (never error, never deadlock) and every query completes correctly.
#[test]
fn in_flight_ceiling_serializes_without_losing_queries() {
    let oracle = LegoBase::generate(SCALE).run_sql(tpch_sql(6), Config::OptC).expect("oracle");
    let service = LegoBase::generate(SCALE)
        .serve_with(ServeOptions::default().with_workers(1).with_max_in_flight(1));
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let svc = &service;
            let oracle = &oracle;
            scope.spawn(move || {
                let out = svc.session().run_sql(tpch_sql(6), Config::OptC).expect("admitted");
                assert!(out.result.rows() == oracle.result.rows());
            });
        }
    });
    assert_eq!(service.stats().queries_ok, 4);
}

/// After `shutdown()`, new queries get the typed `ShuttingDown` — admission
/// declines rather than blocking forever. Shutdown stays idempotent.
#[test]
fn shut_down_service_declines_new_queries() {
    let service = LegoBase::generate(SCALE).serve_with(ServeOptions::default().with_workers(1));
    service.session().run_sql(tpch_sql(6), Config::OptC).expect("before shutdown");
    service.shutdown();
    service.shutdown(); // idempotent
    match service.session().run_sql(tpch_sql(6), Config::OptC) {
        Err(ServiceError::ShuttingDown) => {}
        Ok(_) => panic!("shut-down service served a query"),
        Err(e) => panic!("expected ShuttingDown, got: {e}"),
    }
}
