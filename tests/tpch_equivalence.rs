//! The correctness oracle of the reproduction: every TPC-H query must
//! produce identical results under **every** engine configuration of
//! Table III, from the interpreted Volcano baseline to the fully specialized
//! executor. Since the configurations share no execution code paths beyond
//! the plan representation, agreement across all eight is strong evidence
//! that each optimization is semantics-preserving end to end
//! (compilation → specialization → loading → execution).

use legobase::{Config, LegoBase};

const SCALE: f64 = 0.002;
const EPS: f64 = 1e-6;

fn check_queries(range: impl Iterator<Item = usize>) {
    let system = LegoBase::generate(SCALE);
    for n in range {
        let reference = system.run(n, Config::Dbx);
        // Highly selective queries (exact part-type matches, >300-quantity
        // orders, …) can legitimately return nothing at tiny scale factors.
        let may_be_empty = matches!(n, 2 | 8 | 16 | 17 | 18 | 19 | 20 | 21);
        assert!(
            !reference.result.is_empty() || may_be_empty,
            "Q{n}: reference produced no rows at SF {SCALE}"
        );
        for config in Config::ALL {
            if config == Config::Dbx {
                continue;
            }
            let got = system.run(n, config);
            assert!(
                got.result.approx_eq(&reference.result, EPS),
                "Q{n} under {config:?} diverges from the Volcano reference: {}",
                got.result.diff(&reference.result, EPS).unwrap_or_default()
            );
        }
    }
}

#[test]
fn q1_to_q6_all_configs_agree() {
    check_queries(1..=6);
}

#[test]
fn q7_to_q12_all_configs_agree() {
    check_queries(7..=12);
}

#[test]
fn q13_to_q17_all_configs_agree() {
    check_queries(13..=17);
}

#[test]
fn q18_to_q22_all_configs_agree() {
    check_queries(18..=22);
}

/// Results must also be insensitive to the generator seed (no accidental
/// dependence on data layout).
#[test]
fn q6_agrees_across_seeds() {
    for seed in [1u64, 99, 424242] {
        let data = legobase::tpch::TpchGenerator { scale_factor: SCALE, seed }.generate();
        let system = LegoBase::from_data(data);
        let a = system.run(6, Config::Dbx);
        let b = system.run(6, Config::OptC);
        assert!(
            b.result.approx_eq(&a.result, EPS),
            "seed {seed}: {}",
            b.result.diff(&a.result, EPS).unwrap_or_default()
        );
    }
}

/// Morsel-driven parallel execution is a pure performance feature: for every
/// TPC-H query, every parallelism degree must reproduce the serial result —
/// with joins and sorts parallelized too (partitioned build/probe, merge
/// sort), not only the scan pipelines. Serial-vs-parallel comparisons allow
/// only floating-point reassociation noise (1e-9 relative, far tighter than
/// the cross-engine oracle; joins and sorts are exact); results across
/// degrees ≥ 2 must be **bit-identical** (fixed morsel boundaries + ordered
/// merges — the determinism contract of DESIGN.md §3). The chosen degree and
/// the join/sort clearances must also surface in the compiler's
/// specialization report.
fn check_parallel(range: impl Iterator<Item = usize>) {
    let system = LegoBase::generate(SCALE);
    // Under a CI-wide LEGOBASE_PARALLELISM override, the "serial" baseline
    // below would itself be overridden, so the serial-vs-parallel leg is
    // skipped there (the override leg's purpose is running the *whole*
    // suite parallel-enabled; the tight comparison runs in the default leg).
    // Mirror requested_settings' semantics exactly: only a parseable degree
    // > 1 actually overrides — an empty or invalid value (e.g. the metrics
    // CI job's empty matrix cell) leaves the baseline serial and checkable.
    let env_override = std::env::var("LEGOBASE_PARALLELISM")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .is_some_and(|n| n > 1);
    for n in range {
        let serial =
            (!env_override).then(|| system.run_with_settings(n, &legobase::Settings::optimized()));
        if let Some(serial) = &serial {
            assert_eq!(serial.compilation.spec.parallelism, 1, "Q{n}: serial run must stay serial");
        }
        let mut parallel_results = Vec::new();
        for degree in [2usize, 4] {
            let settings = legobase::Settings::optimized().with_parallelism(degree);
            let got = system.run_with_settings(n, &settings);
            assert_eq!(
                got.compilation.spec.parallelism, degree,
                "Q{n}: specialization report must record the chosen degree"
            );
            // Join-heavy ORDER BY queries must have their joins and sorts
            // cleared for the parallel paths — this is what makes the
            // degree sweep below exercise the partitioned build/probe and
            // the merge sort, not just the scan pipelines.
            if matches!(n, 3 | 5 | 10) {
                assert!(
                    got.compilation.spec.parallel_joins > 0,
                    "Q{n}: joins must be cleared for parallel execution"
                );
                assert!(
                    got.compilation.spec.parallel_sorts > 0,
                    "Q{n}: the ORDER BY must be cleared for parallel execution"
                );
            }
            if n == 6 {
                assert_eq!(got.compilation.spec.parallel_joins, 0, "Q6 has no join");
            }
            if let Some(serial) = &serial {
                assert!(
                    got.result.approx_eq(&serial.result, 1e-9),
                    "Q{n} at degree {degree} diverges from serial: {}",
                    got.result.diff(&serial.result, 1e-9).unwrap_or_default()
                );
            }
            parallel_results.push(got.result);
        }
        for other in &parallel_results[1..] {
            assert_eq!(
                parallel_results[0].sorted_rows(),
                other.sorted_rows(),
                "Q{n}: results must be bit-identical across parallelism degrees"
            );
        }
    }
}

#[test]
fn q1_to_q8_parallel_matches_serial() {
    check_parallel(1..=8);
}

#[test]
fn q9_to_q15_parallel_matches_serial() {
    check_parallel(9..=15);
}

#[test]
fn q16_to_q22_parallel_matches_serial() {
    check_parallel(16..=22);
}

/// Encoded (bit-packed / dictionary-coded) base columns are a pure
/// representation change: under **every** configuration of Table III, every
/// query must return bit-identical rows, in the same order, with encoding
/// on vs forced off. The specialized configurations also exercise the
/// scan-without-decompress kernels at parallelism 4 — packed reads must
/// compose with morsel boundaries.
fn check_encoded(range: impl Iterator<Item = usize>) {
    let system = LegoBase::generate(SCALE);
    // Under a CI-wide LEGOBASE_ENCODING=0 override, the "on" legs below are
    // themselves forced plain, so the non-vacuousness assertion (Opt/C must
    // clear ≥ 1 column) cannot hold there; the on≡off comparisons still run
    // (trivially, plain vs plain — the default leg proves the real thing).
    // Mirror requested_settings' semantics: only "0"/"false"/"off" disables.
    let env_override =
        std::env::var("LEGOBASE_ENCODING").is_ok_and(|v| matches!(v.trim(), "0" | "false" | "off"));
    for n in range {
        for config in Config::ALL {
            let on = system.run_with_settings(n, &config.settings());
            let off = system.run_with_settings(n, &config.settings().with(|s| s.encoding = false));
            assert!(
                on.result.0.rows == off.result.0.rows,
                "Q{n} under {config:?}: encoded result differs from plain: {}",
                on.result.diff(&off.result, 0.0).unwrap_or_default()
            );
            assert!(
                off.compilation.spec.encoded_columns.is_empty(),
                "Q{n} under {config:?}: the ablation must clear nothing for encoding"
            );
        }
        // Every hand-built query touches at least one Int or Date base
        // column, so the fully specialized configuration always encodes
        // something — the on-leg above genuinely ran on packed columns.
        if !env_override {
            let opt = system.run_with_settings(n, &Config::OptC.settings());
            assert!(
                !opt.compilation.spec.encoded_columns.is_empty(),
                "Q{n}: Opt/C cleared no columns for encoding"
            );
        }
        let par4 = legobase::Settings::optimized().with_parallelism(4);
        let on4 = system.run_with_settings(n, &par4);
        let off4 = system.run_with_settings(n, &par4.with(|s| s.encoding = false));
        assert_eq!(
            on4.result.sorted_rows(),
            off4.result.sorted_rows(),
            "Q{n}: encoded and plain runs diverge at parallelism 4"
        );
    }
}

#[test]
fn q1_to_q6_encoded_matches_plain() {
    check_encoded(1..=6);
}

#[test]
fn q7_to_q12_encoded_matches_plain() {
    check_encoded(7..=12);
}

#[test]
fn q13_to_q17_encoded_matches_plain() {
    check_encoded(13..=17);
}

#[test]
fn q18_to_q22_encoded_matches_plain() {
    check_encoded(18..=22);
}

/// The queries that are empty at the tiny default scale must be non-empty —
/// and still agree — at a larger scale.
#[test]
fn selective_queries_nonempty_at_larger_scale() {
    let system = LegoBase::generate(0.02);
    for n in [8usize, 17, 18, 19] {
        let reference = system.run(n, Config::Dbx);
        assert!(!reference.result.is_empty(), "Q{n} still empty at SF 0.02");
        for config in [Config::TpchC, Config::OptC] {
            let got = system.run(n, config);
            assert!(
                got.result.approx_eq(&reference.result, EPS),
                "Q{n} under {config:?}: {}",
                got.result.diff(&reference.result, EPS).unwrap_or_default()
            );
        }
    }
}
