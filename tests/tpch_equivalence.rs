//! The correctness oracle of the reproduction: every TPC-H query must
//! produce identical results under **every** engine configuration of
//! Table III, from the interpreted Volcano baseline to the fully specialized
//! executor. Since the configurations share no execution code paths beyond
//! the plan representation, agreement across all eight is strong evidence
//! that each optimization is semantics-preserving end to end
//! (compilation → specialization → loading → execution).

use legobase::{Config, LegoBase};

const SCALE: f64 = 0.002;
const EPS: f64 = 1e-6;

fn check_queries(range: impl Iterator<Item = usize>) {
    let system = LegoBase::generate(SCALE);
    for n in range {
        let reference = system.run(n, Config::Dbx);
        // Highly selective queries (exact part-type matches, >300-quantity
        // orders, …) can legitimately return nothing at tiny scale factors.
        let may_be_empty = matches!(n, 2 | 8 | 16 | 17 | 18 | 19 | 20 | 21);
        assert!(
            !reference.result.is_empty() || may_be_empty,
            "Q{n}: reference produced no rows at SF {SCALE}"
        );
        for config in Config::ALL {
            if config == Config::Dbx {
                continue;
            }
            let got = system.run(n, config);
            assert!(
                got.result.approx_eq(&reference.result, EPS),
                "Q{n} under {config:?} diverges from the Volcano reference: {}",
                got.result.diff(&reference.result, EPS).unwrap_or_default()
            );
        }
    }
}

#[test]
fn q1_to_q6_all_configs_agree() {
    check_queries(1..=6);
}

#[test]
fn q7_to_q12_all_configs_agree() {
    check_queries(7..=12);
}

#[test]
fn q13_to_q17_all_configs_agree() {
    check_queries(13..=17);
}

#[test]
fn q18_to_q22_all_configs_agree() {
    check_queries(18..=22);
}

/// Results must also be insensitive to the generator seed (no accidental
/// dependence on data layout).
#[test]
fn q6_agrees_across_seeds() {
    for seed in [1u64, 99, 424242] {
        let data = legobase::tpch::TpchGenerator { scale_factor: SCALE, seed }.generate();
        let system = LegoBase::from_data(data);
        let a = system.run(6, Config::Dbx);
        let b = system.run(6, Config::OptC);
        assert!(
            b.result.approx_eq(&a.result, EPS),
            "seed {seed}: {}",
            b.result.diff(&a.result, EPS).unwrap_or_default()
        );
    }
}

/// The queries that are empty at the tiny default scale must be non-empty —
/// and still agree — at a larger scale.
#[test]
fn selective_queries_nonempty_at_larger_scale() {
    let system = LegoBase::generate(0.02);
    for n in [8usize, 17, 18, 19] {
        let reference = system.run(n, Config::Dbx);
        assert!(!reference.result.is_empty(), "Q{n} still empty at SF 0.02");
        for config in [Config::TpchC, Config::OptC] {
            let got = system.run(n, config);
            assert!(
                got.result.approx_eq(&reference.result, EPS),
                "Q{n} under {config:?}: {}",
                got.result.diff(&reference.result, EPS).unwrap_or_default()
            );
        }
    }
}
