//! The service's plan and prepared caches: hit/miss accounting, result and
//! optimizer-report equivalence between cached and uncached executions, key
//! canonicalization (whitespace and comments never miss), key structure
//! (settings split the prepared cache but not the plan cache), and
//! invalidation on a catalog statistics refresh.

use legobase::sql::tpch_sql;
use legobase::{Config, LegoBase, ServeOptions, TpchData};

const SCALE: f64 = 0.002;

/// True when CI's `LEGOBASE_OPTIMIZE=0` leg forces the optimizer off — the
/// plan cache then keys every text identically and no `OptReport` exists.
fn optimizer_forced_off() -> bool {
    std::env::var("LEGOBASE_OPTIMIZE")
        .map(|v| matches!(v.trim(), "0" | "false" | "off"))
        .unwrap_or(false)
}

/// First execution misses both caches, second hits both; results and
/// optimizer reports are identical either way — and identical to the plain
/// per-query `run_sql` oracle.
#[test]
fn hit_miss_counters_and_cached_equivalence() {
    let service = LegoBase::generate(SCALE).serve_with(ServeOptions::default().with_workers(1));
    let session = service.session();
    let sql = tpch_sql(6);

    let first = session.run_sql(sql, Config::OptC).expect("Q6");
    assert!(!first.plan_cached && !first.prepared_cached);
    let s = service.stats();
    assert_eq!((s.plan_cache_misses, s.plan_cache_hits), (1, 0));
    assert_eq!((s.prepared_cache_misses, s.prepared_cache_hits), (1, 0));

    let second = session.run_sql(sql, Config::OptC).expect("Q6 cached");
    assert!(second.plan_cached && second.prepared_cached);
    let s = service.stats();
    assert_eq!((s.plan_cache_misses, s.plan_cache_hits), (1, 1));
    assert_eq!((s.prepared_cache_misses, s.prepared_cache_hits), (1, 1));

    assert!(first.result.rows() == second.result.rows(), "cached result differs");
    match (&first.opt, &second.opt) {
        (Some(a), Some(b)) => assert_eq!(a.summary(), b.summary(), "cached OptReport differs"),
        (None, None) => assert!(optimizer_forced_off(), "OptReport missing with optimizer on"),
        _ => panic!("cached and uncached disagree on OptReport presence"),
    }

    // The oracle agrees bit-for-bit, reports included.
    let oracle = LegoBase::generate(SCALE).run_sql(sql, Config::OptC).expect("oracle Q6");
    assert!(first.result.rows() == oracle.result.rows());
    if let (Some(a), Some(o)) = (&first.opt, &oracle.opt) {
        assert_eq!(a.summary(), o.summary(), "service OptReport differs from oracle");
    }
}

/// The cache key is the canonicalized token stream: reformatting the text
/// and adding `--` comments still hits; a different configuration hits the
/// plan cache (same text + optimize flag) but misses the prepared cache
/// (different settings).
#[test]
fn key_canonicalization_and_key_structure() {
    let service = LegoBase::generate(SCALE).serve_with(ServeOptions::default().with_workers(1));
    let session = service.session();
    let sql = tpch_sql(6);

    session.run_sql(sql, Config::OptC).expect("Q6");
    let reformatted = format!("  -- reformatted copy\n{sql}\n  -- trailing comment");
    let out = session.run_sql(&reformatted, Config::OptC).expect("Q6 reformatted");
    assert!(out.plan_cached && out.prepared_cached, "reformatting must not miss");

    let other_config = session.run_sql(sql, Config::OptScala).expect("Q6 OptScala");
    assert!(other_config.plan_cached, "plan cache is settings-independent");
    assert!(!other_config.prepared_cached, "prepared cache is keyed on full settings");
    let s = service.stats();
    assert_eq!((s.plan_cache_misses, s.plan_cache_hits), (1, 2));
    assert_eq!((s.prepared_cache_misses, s.prepared_cache_hits), (2, 1));
}

/// Refreshing a table's statistics bumps the catalog version: previously
/// cached plans (optimized under the old statistics) are never served
/// again, and the re-planned query still computes the same result.
#[test]
fn stats_refresh_invalidates_cached_plans() {
    let service = LegoBase::generate(SCALE).serve_with(ServeOptions::default().with_workers(1));
    let session = service.session();
    let sql = tpch_sql(3);

    let before = session.run_sql(sql, Config::OptC).expect("Q3");
    assert!(session.run_sql(sql, Config::OptC).expect("Q3 cached").plan_cached);

    // Re-attach the same analytic statistics: semantically a no-op, but a
    // *refresh* — the version bump must invalidate, not the value change.
    let fresh = TpchData::generate(SCALE);
    let stats = fresh.catalog.stats("lineitem").cloned().expect("lineitem stats");
    service.update_stats("lineitem", stats);

    let after = session.run_sql(sql, Config::OptC).expect("Q3 after refresh");
    assert!(!after.plan_cached, "stale plan served after a statistics refresh");
    assert!(!after.prepared_cached, "stale prepared query served after a refresh");
    assert!(before.result.rows() == after.result.rows(), "refresh changed the result");
    let s = service.stats();
    assert_eq!((s.plan_cache_misses, s.plan_cache_hits), (2, 1));
}

/// Zero-capacity caches are disabled: every execution misses, and results
/// are still correct — caching is purely an amortization, never load-bearing.
#[test]
fn disabled_caches_still_serve_correctly() {
    let options = ServeOptions::default()
        .with_workers(1)
        .with_plan_cache_capacity(0)
        .with_prepared_cache_capacity(0);
    let service = LegoBase::generate(SCALE).serve_with(options);
    let session = service.session();
    let oracle = LegoBase::generate(SCALE).run_sql(tpch_sql(6), Config::OptC).expect("oracle");
    for _ in 0..2 {
        let out = session.run_sql(tpch_sql(6), Config::OptC).expect("Q6 uncached");
        assert!(!out.plan_cached && !out.prepared_cached);
        assert!(out.result.rows() == oracle.result.rows());
    }
    let s = service.stats();
    assert_eq!((s.plan_cache_misses, s.plan_cache_hits), (2, 0));
    assert_eq!((s.prepared_cache_misses, s.prepared_cache_hits), (2, 0));
}
