//! Stress and lifecycle properties of the query service: random plans fired
//! from random client-thread counts always match serial execution bit for
//! bit, and `shutdown()` drains in-flight queries and joins every worker —
//! no leaks, no deadlock, under repeated start/stop cycles.

use legobase::engine::expr::{AggKind, CmpOp, Expr};
use legobase::engine::plan::{AggSpec, JoinKind, Plan, QueryPlan, SortOrder};
use legobase::storage::Value;
use legobase::{Config, LegoBase, QueryService, ServeOptions, ServiceError, Settings};
use proptest::prelude::*;
use std::sync::OnceLock;

const SCALE: f64 = 0.002;

fn oracle_system() -> &'static LegoBase {
    static SYSTEM: OnceLock<LegoBase> = OnceLock::new();
    SYSTEM.get_or_init(|| LegoBase::generate(SCALE))
}

fn service() -> &'static QueryService {
    static SERVICE: OnceLock<QueryService> = OnceLock::new();
    SERVICE.get_or_init(|| {
        LegoBase::generate(SCALE).serve_with(ServeOptions::default().with_workers(2))
    })
}

/// A compact random-plan generator (a small cousin of `random_plans.rs`,
/// which test binaries cannot share): filtered scans of `orders` /
/// `lineitem`, an orders⋈lineitem PK/FK join, topped by a grouped
/// aggregation, a distinct projection, or a top-k sort — enough shape
/// variety to exercise scans, joins, aggregation, and sorts on the shared
/// pool.
fn arb_plan() -> impl Strategy<Value = QueryPlan> {
    let source = (any::<bool>(), 0i64..1600, any::<bool>()).prop_map(|(join, okey, filtered)| {
        let orders = if filtered {
            Plan::Select {
                input: Box::new(Plan::scan("orders")),
                predicate: Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::lit(Value::Int(okey))),
            }
        } else {
            Plan::scan("orders")
        };
        if join {
            Plan::HashJoin {
                left: Box::new(orders),
                right: Box::new(Plan::scan("lineitem")),
                left_keys: vec![0],
                right_keys: vec![0],
                kind: JoinKind::Inner,
                residual: None,
            }
        } else {
            orders
        }
    });
    (source, 0usize..3, 1usize..15).prop_map(|(src, consumer, limit)| {
        // Column 7 (o_shippriority) is a low-cardinality group key; columns
        // 0/3 (o_orderkey, o_totalprice) are numeric aggregates — all in the
        // `orders` prefix, so the same indices work with and without the join.
        let plan = match consumer {
            0 => Plan::Sort {
                input: Box::new(Plan::Agg {
                    input: Box::new(src),
                    group_by: vec![7],
                    aggs: vec![
                        AggSpec::new(AggKind::Count, Expr::lit(1i64), "n"),
                        AggSpec::new(AggKind::Sum, Expr::col(3), "s"),
                    ],
                }),
                keys: vec![(0, SortOrder::Asc)],
            },
            1 => Plan::Distinct {
                input: Box::new(Plan::Project {
                    input: Box::new(src),
                    exprs: vec![(Expr::col(7), "k".into())],
                }),
            },
            _ => Plan::Limit {
                input: Box::new(Plan::Sort {
                    input: Box::new(src),
                    keys: vec![(0, SortOrder::Asc)],
                }),
                n: limit,
            },
        };
        QueryPlan::new("random", plan)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any random plan, fired simultaneously from 2–5 client threads mixing
    /// serial and degree-4 settings, matches the single-process serial
    /// oracle bit for bit on every thread.
    #[test]
    fn concurrent_random_plans_match_serial(q in arb_plan(), threads in 2usize..6) {
        let serial = Config::OptC.settings();
        let parallel = serial.with_parallelism(4);
        let oracle_serial = oracle_system().run_plan(&q, &serial).result;
        let oracle_parallel = oracle_system().run_plan(&q, &parallel).result;
        let svc = service();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let (q, oracle, settings): (&QueryPlan, &legobase::ResultTable, &Settings) =
                    if t % 2 == 0 {
                        (&q, &oracle_serial, &serial)
                    } else {
                        (&q, &oracle_parallel, &parallel)
                    };
                scope.spawn(move || {
                    let out = svc
                        .session()
                        .run_plan(q, settings)
                        .unwrap_or_else(|e| panic!("thread {t}: {e}"));
                    assert!(
                        out.result.rows() == oracle.rows(),
                        "thread {t}: concurrent result diverges from serial \
                         oracle on {:#?}",
                        q.root
                    );
                });
            }
        });
    }
}

/// `shutdown()` drains: a query in flight when shutdown begins either
/// completes with the correct result or was never admitted (typed
/// `ShuttingDown`) — it is never dropped, corrupted, or deadlocked. After
/// `shutdown()` returns, admission declines and the pool's workers are
/// joined; `into_system()` then restarts a fresh service over the same data.
/// Five start/stop cycles prove nothing leaks and nothing deadlocks.
#[test]
fn shutdown_drains_in_flight_queries_across_restart_cycles() {
    let oracle = oracle_system()
        .run_sql(legobase::sql::tpch_sql(6), Config::OptC)
        .expect("oracle Q6")
        .result;
    let mut system = LegoBase::generate(SCALE);
    for cycle in 0..5 {
        let service = system.serve_with(ServeOptions::default().with_workers(2));
        // Warm path proves the cycle's service works at all.
        let out = service
            .session()
            .run_sql(legobase::sql::tpch_sql(6), Config::OptC)
            .unwrap_or_else(|e| panic!("cycle {cycle}: {e}"));
        assert!(out.result.rows() == oracle.rows(), "cycle {cycle}");

        std::thread::scope(|scope| {
            let svc = &service;
            let oracle = &oracle;
            let in_flight = scope
                .spawn(move || svc.session().run_sql(legobase::sql::tpch_sql(6), Config::OptC));
            // Let the client race into admission, then shut down under it.
            std::thread::sleep(std::time::Duration::from_millis(1));
            svc.shutdown();
            match in_flight.join().expect("client must not panic") {
                Ok(out) => {
                    assert!(
                        out.result.rows() == oracle.rows(),
                        "cycle {cycle}: drained query returned a wrong result"
                    );
                }
                Err(ServiceError::ShuttingDown) => {} // lost the admission race
                Err(e) => panic!("cycle {cycle}: expected a drained result, got: {e}"),
            }
        });

        // Post-shutdown: typed decline, never a hang.
        assert!(matches!(
            service.session().run_sql(legobase::sql::tpch_sql(6), Config::OptC),
            Err(ServiceError::ShuttingDown)
        ));
        system = service.into_system();
    }
}
