//! Domain-truth assertions per TPC-H query: beyond cross-engine agreement,
//! each query's result must satisfy invariants that follow from the data
//! generator's guarantees and the query's semantics. These catch classes of
//! bugs that engine-vs-engine comparison cannot (e.g. all engines sharing a
//! mistranslated plan).

use legobase::storage::Value;
use legobase::{Config, LegoBase};
use std::sync::OnceLock;

fn system() -> &'static LegoBase {
    static SYSTEM: OnceLock<LegoBase> = OnceLock::new();
    SYSTEM.get_or_init(|| LegoBase::generate(0.01))
}

fn run(n: usize) -> legobase::ResultTable {
    system().run(n, Config::OptC).result
}

#[test]
fn q1_groups_and_monotone_sums() {
    let r = run(1);
    // returnflag ∈ {A,N,R} × linestatus ∈ {F,O}, and (N,F)/(A,O)/(R,O) are
    // impossible by the generator's CURRENTDATE rules except (N,O)+(N,F):
    // receipt ≤ horizon ⇒ flag ∈ {A,R}; ship > horizon ⇒ status O.
    assert!(r.len() <= 6 && r.len() >= 3, "Q1 groups: {}", r.len());
    for row in r.rows() {
        let qty = row[2].as_float();
        let base = row[3].as_float();
        let disc = row[4].as_float();
        let charge = row[5].as_float();
        let count = row[9].as_int();
        assert!(qty > 0.0 && count > 0);
        // sum_disc_price ≤ sum_base_price ≤ sum_charge upper bound ordering.
        assert!(disc <= base * 1.0001, "discounted ≤ base");
        assert!(charge >= disc, "charge includes tax ≥ discounted");
        // avg_qty = sum_qty / count.
        let avg_qty = row[6].as_float();
        assert!((avg_qty - qty / count as f64).abs() < 1e-6);
    }
}

#[test]
fn q3_topk_is_sorted_and_unique_orders() {
    let r = run(3);
    assert!(r.len() <= 10);
    let mut seen = std::collections::HashSet::new();
    let mut prev = f64::INFINITY;
    for row in r.rows() {
        assert!(seen.insert(row[0].as_int()), "duplicate orderkey");
        let rev = row[1].as_float();
        assert!(rev <= prev + 1e-9, "revenue not descending");
        prev = rev;
    }
}

#[test]
fn q4_priorities_are_the_official_five() {
    let r = run(4);
    assert!(r.len() <= 5);
    for row in r.rows() {
        let p = row[0].as_str();
        assert!(
            ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"].contains(&p),
            "unexpected priority {p}"
        );
        assert!(row[1].as_int() > 0);
    }
    // Output is sorted by priority.
    let names: Vec<&str> = r.rows().iter().map(|r| r[0].as_str()).collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted);
}

#[test]
fn q5_nations_belong_to_asia() {
    let r = run(5);
    let asia = ["INDIA", "INDONESIA", "JAPAN", "CHINA", "VIETNAM"];
    for row in r.rows() {
        assert!(asia.contains(&row[0].as_str()), "{} is not Asian", row[0]);
        assert!(row[1].as_float() > 0.0);
    }
}

#[test]
fn q6_matches_manual_computation() {
    // Recompute Q6 directly over the raw data.
    let data = &system().data;
    let li = data.table("lineitem");
    let (sd, d, q, ep) = (
        li.schema.col("l_shipdate"),
        li.schema.col("l_discount"),
        li.schema.col("l_quantity"),
        li.schema.col("l_extendedprice"),
    );
    let lo = legobase::storage::Date::from_ymd(1994, 1, 1);
    let hi = legobase::storage::Date::from_ymd(1995, 1, 1);
    let mut expected = 0.0;
    for row in &li.rows {
        let ship = row[sd].as_date();
        let disc = row[d].as_float();
        if ship >= lo && ship < hi && (0.05..=0.07).contains(&disc) && row[q].as_float() < 24.0 {
            expected += row[ep].as_float() * disc;
        }
    }
    let r = run(6);
    assert_eq!(r.len(), 1);
    let got = r.rows()[0][0].as_float();
    assert!((got - expected).abs() <= 1e-6 * expected.abs().max(1.0), "{got} vs {expected}");
}

#[test]
fn q7_nation_pairs_and_years() {
    let r = run(7);
    for row in r.rows() {
        let (a, b) = (row[0].as_str(), row[1].as_str());
        assert!(
            (a == "FRANCE" && b == "GERMANY") || (a == "GERMANY" && b == "FRANCE"),
            "unexpected pair {a}/{b}"
        );
        let year = row[2].as_int();
        assert!((1995..=1996).contains(&year), "year {year} outside range");
    }
}

#[test]
fn q8_market_share_is_a_fraction() {
    for row in run(8).rows() {
        let share = row[1].as_float();
        assert!((0.0..=1.0).contains(&share), "market share {share} outside [0,1]");
        assert!((1995..=1996).contains(&row[0].as_int()));
    }
}

#[test]
fn q10_topk_customers_revenue_descending() {
    let r = run(10);
    assert!(r.len() <= 20);
    let mut prev = f64::INFINITY;
    for row in r.rows() {
        let rev = row[7].as_float();
        assert!(rev <= prev + 1e-9);
        prev = rev;
    }
}

#[test]
fn q11_values_exceed_global_threshold() {
    let r = run(11);
    // Recompute the German stock total to validate the HAVING threshold.
    let data = &system().data;
    let nation = data.table("nation");
    let germany: i64 =
        nation.rows.iter().find(|row| row[1].as_str() == "GERMANY").expect("GERMANY exists")[0]
            .as_int();
    let supplier = data.table("supplier");
    let german_suppliers: std::collections::HashSet<i64> = supplier
        .rows
        .iter()
        .filter(|row| row[3].as_int() == germany)
        .map(|row| row[0].as_int())
        .collect();
    let ps = data.table("partsupp");
    let mut total = 0.0;
    for row in &ps.rows {
        if german_suppliers.contains(&row[1].as_int()) {
            total += row[3].as_float() * row[2].as_int() as f64;
        }
    }
    let threshold = total * 0.0001;
    let mut prev = f64::INFINITY;
    for row in r.rows() {
        let value = row[1].as_float();
        assert!(value > threshold * 0.999, "{value} below threshold {threshold}");
        assert!(value <= prev + 1e-9, "not sorted descending");
        prev = value;
    }
}

#[test]
fn q12_line_counts_partition_the_join() {
    let r = run(12);
    assert!(r.len() <= 2, "only MAIL and SHIP qualify");
    for row in r.rows() {
        assert!(["MAIL", "SHIP"].contains(&row[0].as_str()));
        assert!(row[1].as_int() >= 0 && row[2].as_int() >= 0);
        assert!(row[1].as_int() + row[2].as_int() > 0);
    }
}

#[test]
fn q13_distribution_covers_all_customers() {
    let r = run(13);
    // Σ custdist = number of customers (every customer lands in exactly one
    // c_count bucket thanks to the left outer join).
    let total: i64 = r.rows().iter().map(|row| row[1].as_int()).sum();
    assert_eq!(total, system().data.table("customer").len() as i64);
    // A zero-orders bucket must exist (custkey % 3 == 0 never orders).
    assert!(r.rows().iter().any(|row| row[0].as_int() == 0));
}

#[test]
fn q14_promo_revenue_is_a_percentage() {
    let r = run(14);
    assert_eq!(r.len(), 1);
    let pct = r.rows()[0][0].as_float();
    assert!((0.0..=100.0).contains(&pct), "promo percentage {pct}");
}

#[test]
fn q15_winner_has_the_max_revenue() {
    let r = run(15);
    assert!(!r.is_empty(), "someone must win");
    let winner_rev = r.rows()[0][4].as_float();
    for row in r.rows() {
        assert!((row[4].as_float() - winner_rev).abs() < 1e-9, "ties must share the max");
    }
}

#[test]
fn q16_sizes_come_from_the_in_list() {
    let allowed = [49i64, 14, 23, 45, 19, 3, 36, 9];
    for row in run(16).rows() {
        assert!(allowed.contains(&row[2].as_int()));
        assert_ne!(row[0].as_str(), "Brand#45");
        assert!(!row[1].as_str().starts_with("MEDIUM POLISHED"));
        assert!(row[3].as_int() >= 1);
    }
}

#[test]
fn q21_output_sorted_and_saudi_only() {
    let r = run(21);
    assert!(r.len() <= 100);
    let mut prev = i64::MAX;
    for row in r.rows() {
        assert!(row[0].as_str().starts_with("Supplier#"));
        let n = row[1].as_int();
        assert!(n <= prev, "numwait not descending");
        prev = n;
    }
}

#[test]
fn q22_country_codes_from_the_list() {
    let allowed = ["13", "31", "23", "29", "30", "18", "17"];
    for row in run(22).rows() {
        assert!(allowed.contains(&row[0].as_str()), "code {}", row[0]);
        assert!(row[1].as_int() > 0);
        // Positive balances only (filtered above the average, which is > 0).
        assert!(row[2].as_float() > 0.0);
    }
}

#[test]
fn q18_only_large_orders() {
    // Every reported order's lineitem quantity sum must exceed 300.
    for row in run(18).rows() {
        assert!(row[5].as_float() > 300.0, "sum_qty {} ≤ 300", row[5]);
    }
}

#[test]
fn q20_q2_outputs_well_formed() {
    for row in run(20).rows() {
        assert!(row[0].as_str().starts_with("Supplier#"));
    }
    let q2 = run(2);
    assert!(q2.len() <= 100);
    for row in q2.rows() {
        assert!(matches!(row[3], Value::Int(_)));
    }
}

#[test]
fn q9_and_q17_shapes() {
    for row in run(9).rows() {
        let year = row[1].as_int();
        assert!((1992..=1998).contains(&year));
    }
    let q17 = run(17);
    assert_eq!(q17.len(), 1); // global aggregate (possibly NULL at this SF)
}

#[test]
fn q19_revenue_nonnegative() {
    let r = run(19);
    assert_eq!(r.len(), 1);
    if let Value::Float(rev) = r.rows()[0][0] {
        assert!(rev >= 0.0);
    }
}
