//! The frontend's correctness oracle: every TPC-H query parsed from its
//! embedded SQL text must produce the **same result as the hand-built
//! plan** under **every** engine configuration of Table III. The hand-built
//! plans are themselves pinned against each other by `tpch_equivalence`, so
//! agreement here proves the whole text → AST → resolution → lowering
//! pipeline end to end — including under `LEGOBASE_PARALLELISM=4`, which CI
//! uses to run this same suite through the morsel-parallel code paths.

use legobase::sql::{plan_named, tpch_sql};
use legobase::{Config, LegoBase};

const SCALE: f64 = 0.002;
const EPS: f64 = 1e-6;

fn check_sql_queries(range: impl Iterator<Item = usize>) {
    let system = LegoBase::generate(SCALE);
    for n in range {
        let sql = tpch_sql(n);
        let parsed = plan_named(sql, &format!("Q{n}"), &system.data.catalog)
            .unwrap_or_else(|e| panic!("Q{n} failed to lower:\n{}", e.render(sql)));
        let hand = system.plan(n);
        for config in Config::ALL {
            let from_sql = system.run_plan(&parsed, &config.settings());
            let from_hand = system.run_plan(&hand, &config.settings());
            assert!(
                from_sql.result.approx_eq(&from_hand.result, EPS),
                "Q{n} under {config:?}: SQL plan diverges from the hand-built plan: {}",
                from_sql.result.diff(&from_hand.result, EPS).unwrap_or_default()
            );
        }
    }
}

#[test]
fn q1_to_q6_sql_matches_hand_built() {
    check_sql_queries(1..=6);
}

#[test]
fn q7_to_q12_sql_matches_hand_built() {
    check_sql_queries(7..=12);
}

#[test]
fn q13_to_q17_sql_matches_hand_built() {
    check_sql_queries(13..=17);
}

#[test]
fn q18_to_q22_sql_matches_hand_built() {
    check_sql_queries(18..=22);
}

/// The SQL-lowered plans (which shape predicates and projections differently
/// from the hand-built ones, so the `Encode` transformer sees different
/// expression trees) must also be insensitive to the encoded-column
/// representation: bit-identical rows with encoding on vs forced off, under
/// the fully specialized configuration and at parallelism 4.
#[test]
fn sql_plans_encoded_match_plain() {
    let system = LegoBase::generate(SCALE);
    let optimized = legobase::Settings::optimized();
    for n in 1..=22 {
        let sql = tpch_sql(n);
        let parsed = plan_named(sql, &format!("Q{n}"), &system.data.catalog)
            .unwrap_or_else(|e| panic!("Q{n} failed to lower:\n{}", e.render(sql)));
        for settings in [optimized, optimized.with_parallelism(4)] {
            let on = system.run_plan(&parsed, &settings);
            let off = system.run_plan(&parsed, &settings.with(|s| s.encoding = false));
            assert_eq!(
                on.result.sorted_rows(),
                off.result.sorted_rows(),
                "Q{n} (SQL plan, degree {}): encoded diverges from plain",
                settings.parallelism
            );
        }
    }
}

/// The selective queries that are empty at the tiny default scale must stay
/// equal at a scale where they produce rows (mirrors the guard in
/// `tpch_equivalence`), so the oracle is not vacuous for them.
#[test]
fn selective_queries_match_at_larger_scale() {
    let system = LegoBase::generate(0.02);
    for n in [2usize, 8, 17, 18, 19] {
        let sql = tpch_sql(n);
        let parsed = plan_named(sql, &format!("Q{n}"), &system.data.catalog)
            .unwrap_or_else(|e| panic!("Q{n} failed to lower:\n{}", e.render(sql)));
        let reference = system.run_plan(&system.plan(n), &Config::OptC.settings());
        assert!(!reference.result.is_empty(), "Q{n} still empty at SF 0.02");
        let got = system.run_plan(&parsed, &Config::OptC.settings());
        assert!(
            got.result.approx_eq(&reference.result, EPS),
            "Q{n}: {}",
            got.result.diff(&reference.result, EPS).unwrap_or_default()
        );
    }
}

/// The facade entry point parses, runs, and reports spanned errors instead
/// of panicking.
#[test]
fn run_sql_facade() {
    let system = LegoBase::generate(0.002);
    let out = system
        .run_sql(
            "SELECT l_returnflag, count(*) AS n FROM lineitem \
             GROUP BY l_returnflag ORDER BY l_returnflag",
            Config::OptC,
        )
        .expect("valid SQL runs");
    assert!(!out.result.is_empty());
    assert_eq!(out.result.rows()[0].len(), 2);

    let err = match system.run_sql("SELECT * FROM no_such_table", Config::OptC) {
        Err(e) => e,
        Ok(_) => panic!("unknown table must be a frontend error"),
    };
    assert!(err.message.contains("no_such_table"), "{err}");
}
