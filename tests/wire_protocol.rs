//! Adversarial coverage of `legobase-wire-v1` (DESIGN.md §3f): a server
//! facing malformed frames, truncated streams, version skew, and mid-query
//! disconnects must answer with typed errors or clean closes — never a
//! panic, and never a wedged accept loop. After every abuse the same server
//! must keep serving well-behaved clients.

use legobase::client::{Client, ClientError};
use legobase::wire::{self, FrameKind, WireError, MAGIC, MAX_FRAME, VERSION};
use legobase::{LegoBase, QueryError, QueryRequest, ServeOptions};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const SCALE: f64 = 0.002;

fn server() -> legobase::server::TcpServer {
    LegoBase::generate(SCALE)
        .serve_tcp("127.0.0.1:0", ServeOptions::default().with_workers(2))
        .expect("bind ephemeral port")
}

/// The server still answers a clean request — the liveness probe every
/// abuse scenario ends with.
fn assert_still_serving(server: &legobase::server::TcpServer) {
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let resp = client
        .run(&QueryRequest::sql("SELECT count(*) AS n FROM lineitem"))
        .expect("server must keep serving after client misbehavior");
    assert_eq!(resp.result.rows().len(), 1);
}

#[test]
fn version_mismatch_is_typed_and_connection_refused() {
    let server = server();
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.write_all(&MAGIC).unwrap();
    raw.write_all(&99u32.to_le_bytes()).unwrap();
    let mut reply = [0u8; 8];
    raw.read_exact(&mut reply).unwrap();
    assert_eq!([reply[0], reply[1], reply[2], reply[3]], *b"LBER");
    assert_eq!(u32::from_le_bytes([reply[4], reply[5], reply[6], reply[7]]), VERSION);
    // The server closed after the refusal.
    let mut probe = [0u8; 1];
    assert_eq!(raw.read(&mut probe).unwrap_or(0), 0, "connection must be closed");
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn bad_magic_closes_the_connection() {
    let server = server();
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.write_all(b"HTTP/1.1").unwrap();
    let mut probe = [0u8; 16];
    assert_eq!(raw.read(&mut probe).unwrap_or(0), 0, "non-protocol bytes get a silent close");
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn oversized_frame_is_rejected_without_allocation_or_panic() {
    let server = server();
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    wire::client_handshake(&mut raw).unwrap();
    let mut frame = vec![1u8]; // Request kind
    frame.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
    raw.write_all(&frame).unwrap();
    let mut probe = [0u8; 1];
    assert_eq!(raw.read(&mut probe).unwrap_or(0), 0, "oversized frame closes the connection");
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn corrupt_checksum_closes_the_connection() {
    let server = server();
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    wire::client_handshake(&mut raw).unwrap();
    let payload =
        wire::encode_request(&QueryRequest::sql("SELECT count(*) AS n FROM lineitem")).unwrap();
    let mut frame = Vec::new();
    wire::write_frame(&mut frame, FrameKind::Request, &payload).unwrap();
    let mid = 1 + 4 + payload.len() / 2;
    frame[mid] ^= 0x10; // flip a payload bit: checksum must catch it
    raw.write_all(&frame).unwrap();
    let mut probe = [0u8; 1];
    assert_eq!(raw.read(&mut probe).unwrap_or(0), 0);
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn truncated_frame_then_disconnect_is_survived() {
    let server = server();
    {
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        wire::client_handshake(&mut raw).unwrap();
        let payload =
            wire::encode_request(&QueryRequest::sql("SELECT count(*) AS n FROM lineitem")).unwrap();
        let mut frame = Vec::new();
        wire::write_frame(&mut frame, FrameKind::Request, &payload).unwrap();
        raw.write_all(&frame[..frame.len() / 2]).unwrap();
        // Hang up mid-frame: the server sees unexpected EOF, reclaims the
        // session, and keeps serving.
    }
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn mid_query_disconnect_reclaims_the_session() {
    let server = server();
    {
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        wire::client_handshake(&mut raw).unwrap();
        // A full, valid request — then vanish before reading the response.
        let payload = wire::encode_request(&QueryRequest::sql(legobase::sql::tpch_sql(1))).unwrap();
        wire::write_frame(&mut raw, FrameKind::Request, &payload).unwrap();
    }
    // The server may discover the disconnect only when writing results;
    // either way the connection thread exits and new clients are served.
    assert_still_serving(&server);
    let stats = server.stats();
    assert_eq!(stats.queries_panicked, 0, "a disconnect is not a panic");
    server.shutdown();
}

#[test]
fn unexpected_frame_kind_gets_a_protocol_error_frame() {
    let server = server();
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    wire::client_handshake(&mut raw).unwrap();
    // A well-formed frame of a kind only servers send.
    wire::write_frame(&mut raw, FrameKind::ResponseEnd, &[]).unwrap();
    let (kind, payload) = wire::read_frame(&mut raw).expect("server answers before closing");
    assert_eq!(kind, FrameKind::Error);
    assert!(matches!(wire::decode_error(&payload), Err(WireError::Remote(_))));
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn sql_error_spans_survive_the_wire() {
    let sys = LegoBase::generate(SCALE);
    let bad = "SELECT count(*) AS n FROM lineitm";
    let local = match sys.query(&QueryRequest::sql(bad)) {
        Err(QueryError::Sql(e)) => e,
        other => panic!("expected SQL error, got {:?}", other.map(|_| "ok")),
    };
    let server = LegoBase::generate(SCALE)
        .serve_tcp("127.0.0.1:0", ServeOptions::default().with_workers(2))
        .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    match client.run(&QueryRequest::sql(bad)) {
        Err(ClientError::Query(QueryError::Sql(e))) => {
            assert_eq!(e.message, local.message);
            assert_eq!(e.span, local.span, "the caret span crosses the wire intact");
        }
        other => panic!("expected typed SQL error over the wire, got {:?}", other.map(|_| "ok")),
    }
    // The connection is still usable after a query error.
    let resp = client.run(&QueryRequest::sql("SELECT count(*) AS n FROM lineitem")).unwrap();
    assert_eq!(resp.result.rows().len(), 1);
    server.shutdown();
}

#[test]
fn budgets_and_deadlines_are_typed_over_the_wire() {
    let server = server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    match client.run(&QueryRequest::sql(legobase::sql::tpch_sql(1)).with_memory_budget(16)) {
        Err(ClientError::Query(QueryError::OverBudget {
            estimated_bytes, budget_bytes, ..
        })) => {
            assert!(estimated_bytes > budget_bytes);
            assert_eq!(budget_bytes, 16);
        }
        other => panic!("expected OverBudget, got {:?}", other.map(|_| "ok")),
    }
    match client
        .run(&QueryRequest::sql(legobase::sql::tpch_sql(1)).with_deadline(Duration::from_nanos(1)))
    {
        Err(ClientError::Query(QueryError::DeadlineExceeded { deadline, .. })) => {
            assert_eq!(deadline, Duration::from_nanos(1));
        }
        other => panic!("expected DeadlineExceeded, got {:?}", other.map(|_| "ok")),
    }
    // Same connection, same session: a generous deadline completes fine.
    let resp = client
        .run(&QueryRequest::sql(legobase::sql::tpch_sql(6)).with_deadline(Duration::from_secs(120)))
        .expect("generous deadline completes");
    assert!(!resp.result.rows().is_empty());
    server.shutdown();
}

#[test]
fn explain_crosses_the_wire_without_rows() {
    let server = server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let resp = client
        .run(&QueryRequest::sql(legobase::sql::tpch_sql(6)).with_explain(true))
        .expect("explain over the wire");
    let rendered = resp.explanation.expect("explain responses carry the SQL rendering");
    assert!(rendered.to_uppercase().contains("SELECT"));
    assert!(resp.result.rows().is_empty(), "explain executes nothing");
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_then_refuses() {
    let server = server();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    let resp = client.run(&QueryRequest::sql("SELECT count(*) AS n FROM lineitem")).unwrap();
    assert_eq!(resp.result.rows().len(), 1);
    server.shutdown();
    // After shutdown the port no longer completes the handshake: either the
    // connect itself fails or the handshake read hits EOF.
    let refused = match TcpStream::connect(addr) {
        Err(_) => true,
        Ok(mut raw) => wire::client_handshake(&mut raw).is_err(),
    };
    assert!(refused, "a shut-down server must not admit new conversations");
}
