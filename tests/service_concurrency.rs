//! The query service's headline guarantee: N client threads firing the
//! whole TPC-H workload concurrently through one shared service get results
//! **bit-identical** to the serial `run_sql` oracle — for every query, under
//! every named configuration of Table III, and at every morsel-parallelism
//! degree (CI re-runs this suite under `LEGOBASE_PARALLELISM=4`, pushing all
//! of the concurrent executions through the shared morsel pool).
//!
//! Bit-identity (not approximate equality) is the right bar here: a service
//! query runs the *same* plan with the *same* effective settings as the
//! oracle, and the scheduling substrate — scoped threads vs the shared pool,
//! and whichever tenant's morsels interleave with ours — must be invisible
//! in the result (DESIGN.md §3d).

use legobase::sql::tpch_sql;
use legobase::{Config, LegoBase, ResultTable, ServeOptions};

const SCALE: f64 = 0.002;

/// All 22 queries under all 8 configurations, fired from 8 concurrent
/// client threads (one per configuration, each starting at a staggered
/// query so distinct queries overlap in flight), every result compared
/// bit-for-bit against the serial oracle.
#[test]
fn all_configs_and_queries_bit_identical_under_concurrency() {
    let oracle_sys = LegoBase::generate(SCALE);
    let oracle: Vec<Vec<ResultTable>> = Config::ALL
        .iter()
        .map(|config| {
            (1..=22)
                .map(|n| {
                    oracle_sys
                        .run_sql(tpch_sql(n), *config)
                        .unwrap_or_else(|e| panic!("oracle Q{n} {config:?}: {e}"))
                        .result
                })
                .collect()
        })
        .collect();

    // TPC-H generation is deterministic per scale factor, so the service
    // sees exactly the oracle's data.
    let service = LegoBase::generate(SCALE).serve_with(ServeOptions::default().with_workers(3));
    std::thread::scope(|scope| {
        for (ci, config) in Config::ALL.into_iter().enumerate() {
            let oracle = &oracle;
            let service = &service;
            scope.spawn(move || {
                let session = service.session();
                for k in 0..22usize {
                    let n = 1 + (k + ci * 3) % 22;
                    let out = session
                        .run_sql(tpch_sql(n), config)
                        .unwrap_or_else(|e| panic!("service Q{n} {config:?}: {e}"));
                    assert!(
                        out.result.rows() == oracle[ci][n - 1].rows(),
                        "Q{n} under {config:?}: concurrent service result diverges \
                         from the serial oracle"
                    );
                }
            });
        }
    });

    let stats = service.stats();
    assert_eq!(stats.queries_ok, 176, "8 configs x 22 queries all served");
    assert_eq!(stats.queries_rejected + stats.queries_panicked, 0);
    // The plan cache is keyed on (text, catalog version, optimize flag), so
    // all 8 configurations share entries: at least the 22 distinct texts
    // miss once (concurrent first-misses on the same text may race — both
    // count), everything else hits.
    assert_eq!(stats.plan_cache_hits + stats.plan_cache_misses, 176);
    assert!(stats.plan_cache_misses >= 22, "every distinct text misses once");
    service.shutdown();
}

/// Concurrency *and* intra-query parallelism at once: every client requests
/// degree 4, so all tenants' morsels interleave on the shared pool. Results
/// must still be bit-identical to a serial-process oracle running the same
/// degree-4 settings — the shared scheduler is invisible.
#[test]
fn parallel_degree_4_clients_bit_identical_to_oracle() {
    let oracle_sys = LegoBase::generate(SCALE);
    let configs = [Config::OptC, Config::OptScala, Config::HyPerLike];
    let queries = [1usize, 3, 6, 12, 14, 19];
    let oracle: Vec<Vec<ResultTable>> = configs
        .iter()
        .map(|config| {
            let settings = config.settings().with_parallelism(4);
            queries
                .iter()
                .map(|&n| oracle_sys.run_sql_with_settings(tpch_sql(n), &settings).unwrap().result)
                .collect()
        })
        .collect();

    let service = LegoBase::generate(SCALE).serve_with(ServeOptions::default().with_workers(2));
    std::thread::scope(|scope| {
        for (ci, config) in configs.into_iter().enumerate() {
            let oracle = &oracle;
            let service = &service;
            scope.spawn(move || {
                let session = service.session();
                let settings = config.settings().with_parallelism(4);
                for (qi, &n) in queries.iter().enumerate() {
                    let out = session
                        .run_sql_with_settings(tpch_sql(n), &settings)
                        .unwrap_or_else(|e| panic!("service Q{n} {config:?} deg 4: {e}"));
                    assert!(
                        out.result.rows() == oracle[ci][qi].rows(),
                        "Q{n} under {config:?} at degree 4: shared-pool result \
                         diverges from the serial-process oracle"
                    );
                }
            });
        }
    });
    service.shutdown();
}
