//! The estimation-error regression harness (PR 8).
//!
//! The histogram-backed cost model is only as good as its cardinality
//! estimates, so this suite pins them down three ways:
//!
//! 1. **Cold q-error bounds** — for every TPC-H query, the q-error
//!    `max(est/actual, actual/est)` of the final-stage cardinality must
//!    stay within a committed per-query bound. The bounds are measured
//!    values with roughly 2× headroom: tight enough that a regression in
//!    the histograms or selectivity arithmetic trips them, loose enough
//!    that data-dependent jitter does not.
//! 2. **Warm convergence** — after one feedback round through a
//!    `QueryService` session, every query's q-error drops to ≤ 2 (most to
//!    exactly 1): the adaptive loop absorbs observed actuals for any
//!    estimate that was more than 2× off.
//! 3. **Q7 join order** — the naive-lowered Q7 must leave its catastrophic
//!    syntactic order and price at (or below) the hand plan's estimated
//!    cost, with the selective nation pair driving the join — the shape
//!    the hand plan reaches by construction.
//!
//! CI's `LEGOBASE_OPTIMIZE=0` leg has no estimates to check; the suite
//! no-ops there. The `LEGOBASE_FEEDBACK=0` ablation leg is asserted in
//! `tests/optimizer_equivalence.rs`.

use legobase::engine::optimizer;
use legobase::sql::tpch_sql;
use legobase::{Config, LegoBase, ServeOptions};
use std::sync::OnceLock;

const SCALE: f64 = 0.002;

fn system() -> &'static LegoBase {
    static SYSTEM: OnceLock<LegoBase> = OnceLock::new();
    SYSTEM.get_or_init(|| LegoBase::generate(SCALE))
}

fn optimizer_forced_off() -> bool {
    std::env::var("LEGOBASE_OPTIMIZE").is_ok_and(|v| matches!(v.trim(), "0" | "false" | "off"))
}

fn feedback_forced_off() -> bool {
    std::env::var("LEGOBASE_FEEDBACK").is_ok_and(|v| matches!(v.trim(), "0" | "false" | "off"))
}

fn q_error(est: f64, actual: f64) -> f64 {
    let (est, actual) = (est.max(1.0), actual.max(1.0));
    (est / actual).max(actual / est)
}

/// Committed cold q-error bound per query at SF 0.002 (measured value in
/// the comment; bound ≈ 2× measured, minimum 2). Tightening one of these
/// is progress; loosening one is a regression that needs justification.
const COLD_BOUNDS: [f64; 22] = [
    3.0,   // Q1:  1.50 — four line-status groups estimated from NDVs
    2.0,   // Q2:  1.00
    2.0,   // Q3:  1.00
    2.0,   // Q4:  1.00
    8.0,   // Q5:  4.17 — region→nation fan-out assumed uniform
    2.0,   // Q6:  1.00
    300.0, // Q7:  192.9 — nation-pair OR priced before factoring; feedback fixes warm
    3.0,   // Q8:  1.50
    4.0,   // Q9:  1.86
    2.0,   // Q10: 1.00
    4.0,   // Q11: 1.78
    2.0,   // Q12: 1.00
    25.0,  // Q13: 13.6 — comment anti-join correlation invisible to stats
    2.0,   // Q14: 1.00
    2.0,   // Q15: 1.00
    2.5,   // Q16: 1.07
    2.0,   // Q17: 1.00
    150.0, // Q18: 100 — LIMIT over a misestimated HAVING; feedback fixes warm
    2.0,   // Q19: 1.00
    20.0,  // Q20: 9.33 — nested semi-join selectivity stacked independently
    25.0,  // Q21: 12.8 — Poisson anti-join survivor fraction vs correlated keys
    12.0,  // Q22: 6.00 — anti-join over a substring domain
];

/// Every query's cold estimate stays inside its committed q-error bound.
#[test]
fn cold_q_errors_within_committed_bounds() {
    if optimizer_forced_off() {
        return;
    }
    let sys = system();
    let mut table = String::new();
    for (i, &bound) in COLD_BOUNDS.iter().enumerate() {
        let q = i + 1;
        let out = sys.run_sql(tpch_sql(q), Config::OptC).unwrap_or_else(|e| panic!("Q{q}: {e}"));
        let rep = out.opt.expect("optimizer report attached");
        let qe = q_error(rep.est_rows(), out.result.len() as f64);
        table.push_str(&format!(
            "Q{q:02}: est {:.1}, actual {}, q-error {qe:.2} (bound {bound})\n",
            rep.est_rows(),
            out.result.len()
        ));
        assert!(
            qe <= bound,
            "Q{q}: q-error {qe:.2} exceeds the committed bound {bound}\n{}\n{table}",
            rep.summary()
        );
    }
}

/// One feedback round later, every estimate lands within 2× of the truth —
/// the loop absorbs exactly the estimates worth correcting.
#[test]
fn warm_q_errors_converge_after_feedback() {
    if optimizer_forced_off() || feedback_forced_off() {
        return;
    }
    let service = LegoBase::generate(SCALE).serve_with(ServeOptions::default().with_workers(1));
    let session = service.session();
    for q in 1..=22 {
        let sql = tpch_sql(q);
        session.run_sql(sql, Config::OptC).unwrap_or_else(|e| panic!("Q{q} cold: {e}"));
        let warm = session.run_sql(sql, Config::OptC).unwrap_or_else(|e| panic!("Q{q} warm: {e}"));
        let rep = warm.opt.expect("optimizer report attached");
        let qe = q_error(rep.est_rows(), warm.result.len() as f64);
        assert!(qe <= 2.0, "Q{q}: warm q-error {qe:.2} after a feedback round\n{}", rep.summary());
    }
    service.shutdown();
}

/// The naive-lowered Q7 abandons its syntactic order for a plan that the
/// cost model prices at (or below) the hand-built plan, driven by the
/// selective nation pair — cold, from the histograms alone; the feedback
/// round then corrects its cardinality estimate without disturbing the
/// join order.
#[test]
fn q7_reaches_hand_plan_join_order() {
    if optimizer_forced_off() {
        return;
    }
    let sys = system();
    let sql = tpch_sql(7);
    let naive = legobase::sql::plan_named(sql, "Q7", &sys.data.catalog)
        .unwrap_or_else(|e| panic!("Q7 failed to lower:\n{}", e.render(sql)));
    let (optimized, report) = optimizer::optimize(&naive, &sys.data.catalog);
    let root = report.root();
    assert!(root.reordered(), "Q7 must leave the syntactic order\n{}", report.summary());
    assert_eq!(root.chosen_order[0], "nation", "{}", report.summary());
    let opt_cost = optimizer::estimated_cost(&optimized, &sys.data.catalog);
    let hand_cost = optimizer::estimated_cost(&sys.plan(7), &sys.data.catalog);
    assert!(
        opt_cost <= hand_cost,
        "Q7: optimized cost {opt_cost:.0} must reach the hand plan's {hand_cost:.0}\n{}",
        report.summary()
    );

    if feedback_forced_off() {
        return;
    }
    let service = LegoBase::generate(SCALE).serve_with(ServeOptions::default().with_workers(1));
    let session = service.session();
    let cold = session.run_sql(sql, Config::OptC).expect("Q7 cold");
    let warm = session.run_sql(sql, Config::OptC).expect("Q7 warm");
    let (crep, wrep) = (cold.opt.expect("cold report"), warm.opt.expect("warm report"));
    assert_eq!(
        crep.root().chosen_order,
        wrep.root().chosen_order,
        "feedback must not disturb the chosen order"
    );
    assert!(wrep.root().feedback_applied, "{}", wrep.summary());
    assert!(
        q_error(wrep.est_rows(), warm.result.len() as f64) <= 2.0,
        "Q7 warm estimate uncorrected: {}",
        wrep.summary()
    );
    assert!(cold.result.rows() == warm.result.rows(), "feedback changed Q7's result");
    service.shutdown();
}
