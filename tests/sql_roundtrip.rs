//! Round-trip property of the SQL frontend: printing a physical plan with
//! `plan_to_sql` and parsing the text back must yield a plan that computes
//! the same result. Exercised two ways:
//!
//! * all 22 hand-built TPC-H plans (stages, semi/anti joins, residuals,
//!   string kernels, cross-join stages — the realistic shapes), and
//! * random plans in the spirit of `random_plans.rs` (joins of all four
//!   kinds with optional residuals, grouped/global aggregation, distinct
//!   projections, top-k), via proptest.
//!
//! Equality is on *results*: the printer materializes every operator as a
//! `WITH` stage, so the round-tripped plan is staged rather than nested —
//! a representation change the engines must not observe.

use legobase::engine::expr::{AggKind, CmpOp, Expr};
use legobase::engine::plan::{AggSpec, JoinKind, Plan, QueryPlan, SortOrder};
use legobase::sql::{plan_named, plan_to_sql};
use legobase::storage::{Date, Value};
use legobase::{Config, LegoBase};
use proptest::prelude::*;
use std::sync::OnceLock;

fn system() -> &'static LegoBase {
    static SYSTEM: OnceLock<LegoBase> = OnceLock::new();
    SYSTEM.get_or_init(|| LegoBase::generate(0.002))
}

fn roundtrip_matches(q: &QueryPlan, config: Config) -> Result<(), String> {
    let sys = system();
    let sql = plan_to_sql(q, &sys.data.catalog);
    let parsed = plan_named(&sql, &q.name, &sys.data.catalog)
        .map_err(|e| format!("printed SQL failed to parse:\n{}\n{}", sql, e.render(&sql)))?;
    let original = sys.run_plan(q, &config.settings()).result;
    let reparsed = sys.run_plan(&parsed, &config.settings()).result;
    if reparsed.approx_eq(&original, 1e-6) {
        Ok(())
    } else {
        Err(format!(
            "round-trip diverges: {}\nSQL:\n{sql}",
            reparsed.diff(&original, 1e-6).unwrap_or_default()
        ))
    }
}

/// Every hand-built TPC-H plan survives print → parse → execute.
#[test]
fn tpch_hand_plans_roundtrip() {
    let sys = system();
    for n in 1..=22 {
        let q = sys.plan(n);
        roundtrip_matches(&q, Config::OptC).unwrap_or_else(|e| panic!("Q{n}: {e}"));
    }
}

// ---------------------------------------------------------------------
// Random plans (compact sibling of random_plans.rs).
// ---------------------------------------------------------------------

/// A filter menu entry: column plus a literal for it.
fn filter_expr(table: &str, pick: usize, frac: f64) -> Expr {
    let (col, value) = match table {
        "customer" => match pick % 2 {
            0 => (0, Value::Int(1 + (400.0 * frac) as i64)),
            _ => (5, Value::Float(-1000.0 + 11000.0 * frac)),
        },
        "orders" => match pick % 3 {
            0 => (1, Value::Int(1 + (400.0 * frac) as i64)),
            1 => (3, Value::Float(1000.0 + 399_000.0 * frac)),
            _ => (4, Value::Date(Date::from_ymd(1992 + (frac * 6.0) as i32, 6, 1))),
        },
        "nation" => (2, Value::Int((4.0 * frac) as i64)),
        _ => match pick % 3 {
            0 => (4, Value::Float(1.0 + 49.0 * frac)),
            1 => (6, Value::Float(0.1 * frac)),
            _ => (10, Value::Date(Date::from_ymd(1993 + (frac * 5.0) as i32, 3, 1))),
        },
    };
    let op = [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge][pick % 4];
    Expr::cmp(op, Expr::col(col), Expr::lit(value))
}

/// (left, right, lkey, rkey, left arity, residual column pair)
type JoinMenu = (&'static str, &'static str, usize, usize, usize, (usize, usize));

const JOINS: [JoinMenu; 3] = [
    ("customer", "orders", 0, 1, 8, (0, 0)),
    ("nation", "customer", 0, 3, 4, (0, 0)),
    ("orders", "lineitem", 0, 0, 9, (3, 5)),
];

/// Group/aggregate menu per left table: (group col, numeric agg col).
fn menu(table: &str) -> (usize, usize) {
    match table {
        "customer" => (3, 5),
        "orders" => (7, 3),
        "nation" => (2, 0),
        _ => (8, 4),
    }
}

fn arb_source() -> impl Strategy<Value = (Plan, &'static str)> {
    let single = (
        proptest::sample::select(vec!["customer", "orders", "nation", "lineitem"]),
        0usize..12,
        0.0f64..1.0,
        any::<bool>(),
    )
        .prop_map(|(t, pick, frac, filtered)| {
            let plan = if filtered {
                Plan::Select {
                    input: Box::new(Plan::scan(t)),
                    predicate: filter_expr(t, pick, frac),
                }
            } else {
                Plan::scan(t)
            };
            (plan, t)
        });
    let join = (0usize..3, 0usize..4, 0usize..3, 0usize..12, 0.0f64..1.0).prop_map(
        |(which, kind, residual, pick, frac)| {
            let (lt, rt, lk, rk, l_arity, res_cols) = JOINS[which];
            let kind = [JoinKind::Inner, JoinKind::LeftOuter, JoinKind::Semi, JoinKind::Anti][kind];
            let right = if residual == 1 {
                Plan::Select {
                    input: Box::new(Plan::scan(rt)),
                    predicate: filter_expr(rt, pick, frac),
                }
            } else {
                Plan::scan(rt)
            };
            let residual = (residual == 0)
                .then(|| Expr::lt(Expr::col(res_cols.0), Expr::col(l_arity + res_cols.1)));
            let plan = Plan::HashJoin {
                left: Box::new(Plan::scan(lt)),
                right: Box::new(right),
                left_keys: vec![lk],
                right_keys: vec![rk],
                kind,
                residual,
            };
            (plan, lt)
        },
    );
    prop_oneof![1 => single, 2 => join]
}

fn arb_query() -> impl Strategy<Value = QueryPlan> {
    (arb_source(), 0usize..3, any::<bool>(), 1usize..20).prop_map(
        |((src, table), consumer, grouped, limit)| {
            let (group_col, agg_col) = menu(table);
            let plan = match consumer {
                0 => {
                    let aggs = vec![
                        AggSpec::new(AggKind::Count, Expr::lit(1i64), "n"),
                        AggSpec::new(AggKind::Sum, Expr::col(agg_col), "s0"),
                        AggSpec::new(AggKind::Min, Expr::col(agg_col), "m"),
                    ];
                    let group_by = if grouped { vec![group_col] } else { vec![] };
                    let agg = Plan::Agg { input: Box::new(src), group_by, aggs };
                    if grouped {
                        Plan::Sort { input: Box::new(agg), keys: vec![(0, SortOrder::Asc)] }
                    } else {
                        agg
                    }
                }
                1 => Plan::Distinct {
                    input: Box::new(Plan::Project {
                        input: Box::new(src),
                        exprs: vec![(Expr::col(group_col), "k".into())],
                    }),
                },
                _ => Plan::Limit {
                    input: Box::new(Plan::Sort {
                        input: Box::new(Plan::Agg {
                            input: Box::new(src),
                            group_by: vec![group_col],
                            aggs: vec![AggSpec::new(AggKind::Count, Expr::lit(1i64), "n")],
                        }),
                        keys: vec![(1, SortOrder::Desc), (0, SortOrder::Asc)],
                    }),
                    n: limit,
                },
            };
            QueryPlan::new("roundtrip", plan)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// print → parse → execute equals direct execution, under both a
    /// generic push configuration and the fully specialized executor.
    #[test]
    fn random_plans_roundtrip(q in arb_query()) {
        for config in [Config::NaiveC, Config::OptC] {
            if let Err(e) = roundtrip_matches(&q, config) {
                prop_assert!(false, "{:?} on {:#?}: {}", config, q.root, e);
            }
        }
    }
}
