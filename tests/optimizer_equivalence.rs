//! The optimizer's correctness oracle.
//!
//! Four layers, strongest first:
//!
//! 1. **Workload equivalence** — every TPC-H query, lowered *naively* from
//!    its SQL text (syntactic join order, un-pushed WHERE) and then
//!    optimized, must produce the same result as the hand-built plan under
//!    every engine configuration. CI re-runs this suite with
//!    `LEGOBASE_PARALLELISM=4` (morsel-parallel paths) and with
//!    `LEGOBASE_OPTIMIZE=0` (the *naive* plans must agree too — the
//!    facade-level tests below read the knob).
//! 2. **Join-order recovery** — the multi-join queries (Q5, Q7, Q8, Q9)
//!    have SQL texts deliberately written in a join order *different from*
//!    the hand-built plans (dimension-first or lineitem-first). The
//!    optimizer must reorder them (asserted via the `OptReport`) onto a
//!    plan whose estimated cost recovers — or beats — the hand-built
//!    plan's under the same cost model.
//! 3. **Rewrite-rule invariance** — each pass individually (pushdown,
//!    inference, reordering) leaves the results of the hand-built plans
//!    *and* of randomized plans (proptest section) unchanged.
//! 4. **Facade behavior** — `run_sql` attaches an `OptReport` with actual
//!    row counts; `explain_sql` renders the optimized plan back to SQL.

use legobase::engine::optimizer::{self, Passes};
use legobase::engine::plan::{AggSpec, JoinKind, Plan, QueryPlan, SortOrder};
use legobase::engine::{AggKind, CmpOp, Expr};
use legobase::storage::{Date, Value};
use legobase::{Config, LegoBase};
use proptest::prelude::*;
use std::sync::OnceLock;

const SCALE: f64 = 0.002;
const EPS: f64 = 1e-6;

fn system() -> &'static LegoBase {
    static SYSTEM: OnceLock<LegoBase> = OnceLock::new();
    SYSTEM.get_or_init(|| LegoBase::generate(SCALE))
}

/// Naive-lowered + optimized SQL == hand-built plan, for every config.
fn check_queries(range: impl Iterator<Item = usize>) {
    let sys = system();
    for n in range {
        let sql = legobase::sql::tpch_sql(n);
        let naive = legobase::sql::plan_named(sql, &format!("Q{n}"), &sys.data.catalog)
            .unwrap_or_else(|e| panic!("Q{n} failed to lower:\n{}", e.render(sql)));
        let (optimized, report) = optimizer::optimize(&naive, &sys.data.catalog);
        let hand = sys.plan(n);
        for config in Config::ALL {
            let got = sys.run_plan(&optimized, &config.settings());
            let want = sys.run_plan(&hand, &config.settings());
            assert!(
                got.result.approx_eq(&want.result, EPS),
                "Q{n} under {config:?}: optimized plan diverges from hand-built: {}\n{}",
                got.result.diff(&want.result, EPS).unwrap_or_default(),
                report.summary(),
            );
        }
    }
}

#[test]
fn q1_to_q6_optimized_matches_hand_built() {
    check_queries(1..=6);
}

#[test]
fn q7_to_q12_optimized_matches_hand_built() {
    check_queries(7..=12);
}

#[test]
fn q13_to_q17_optimized_matches_hand_built() {
    check_queries(13..=17);
}

#[test]
fn q18_to_q22_optimized_matches_hand_built() {
    check_queries(18..=22);
}

/// The multi-join queries reach — or beat — the hand-built join order from
/// their scrambled naive texts: the optimizer must actually reorder, the
/// chosen region order must cost less than the syntactic one, and the
/// whole optimized plan must cost no more than the hand-built plan under
/// the same estimation model (small tolerance: the hand plans carry
/// different projection shapes).
#[test]
fn multi_join_queries_recover_hand_order() {
    let sys = system();
    for n in [5usize, 7, 8, 9] {
        let sql = legobase::sql::tpch_sql(n);
        let naive = legobase::sql::plan_named(sql, &format!("Q{n}"), &sys.data.catalog)
            .unwrap_or_else(|e| panic!("Q{n} failed to lower:\n{}", e.render(sql)));
        let (optimized, report) = optimizer::optimize(&naive, &sys.data.catalog);
        let root = report.root();
        assert!(
            root.reordered(),
            "Q{n}: the scrambled text must be reordered\n{}",
            report.summary()
        );
        assert!(
            root.chosen_cost < root.naive_cost,
            "Q{n}: chosen order must beat the syntactic one: {} vs {}",
            root.chosen_cost,
            root.naive_cost,
        );
        let hand = sys.plan(n);
        let opt_cost = optimizer::estimated_cost(&optimized, &sys.data.catalog);
        let hand_cost = optimizer::estimated_cost(&hand, &sys.data.catalog);
        assert!(
            opt_cost <= hand_cost * 1.10,
            "Q{n}: optimized cost {opt_cost:.0} must recover or beat hand cost {hand_cost:.0}\n{}",
            report.summary(),
        );
        // The region the report describes is the full join of the query.
        assert!(root.naive_order.len() >= 6, "Q{n}: {:?}", root.naive_order);
    }
    // Q9 recovers the hand plan's leading relation exactly: the filtered
    // part scan drives the join.
    let sql = legobase::sql::tpch_sql(9);
    let naive = legobase::sql::plan_named(sql, "Q9", &sys.data.catalog).expect("Q9 lowers");
    let (_, report) = optimizer::optimize(&naive, &sys.data.catalog);
    assert_eq!(report.root().chosen_order[0], "part", "{}", report.summary());
}

/// Each rewrite pass alone is result-invariant on the hand-built plans.
#[test]
fn individual_passes_invariant_on_hand_plans() {
    let sys = system();
    let passes = [
        Passes { pushdown: true, inference: false, join_reorder: false },
        Passes { pushdown: false, inference: true, join_reorder: false },
        Passes { pushdown: false, inference: false, join_reorder: true },
    ];
    for n in 1..=22 {
        let hand = sys.plan(n);
        let reference = sys.run_plan(&hand, &Config::OptC.settings());
        for p in passes {
            let (opt, _) = optimizer::rewrite(&hand, &sys.data.catalog, p);
            let got = sys.run_plan(&opt, &Config::OptC.settings());
            assert!(
                got.result.approx_eq(&reference.result, EPS),
                "Q{n} under {p:?}: {}",
                got.result.diff(&reference.result, EPS).unwrap_or_default(),
            );
        }
    }
}

/// `run_sql` rides the optimizer (honoring `LEGOBASE_OPTIMIZE`) and fills
/// the report's actual row count; `explain_sql` renders the plan.
#[test]
fn facade_reports_and_explains() {
    let sys = system();
    let optimize_off =
        std::env::var("LEGOBASE_OPTIMIZE").is_ok_and(|v| matches!(v.trim(), "0" | "false" | "off"));
    let out = sys.run_sql(legobase::sql::tpch_sql(5), Config::OptC).expect("embedded Q5 runs");
    match &out.opt {
        Some(report) => {
            assert!(!optimize_off, "report must be absent when the env override disables");
            assert_eq!(report.actual_rows, Some(out.result.len()));
            assert!(report.reordered(), "{}", report.summary());
            assert!(report.summary().contains("estimated rows"));
        }
        None => assert!(optimize_off, "run_sql must attach the OptReport by default"),
    }

    let explanation = sys.explain_sql(legobase::sql::tpch_sql(5), Config::OptC).expect("explains");
    assert!(explanation.sql.contains("SELECT"), "{}", explanation.sql);
    if !optimize_off {
        let report = explanation.report.expect("report present");
        assert!(report.root().naive_order.len() == 6, "{}", report.summary());
        // The explained plan is executable and equivalent to the hand plan.
        let got = sys.run_plan(&explanation.plan, &Config::OptC.settings());
        let want = sys.run_plan(&sys.plan(5), &Config::OptC.settings());
        assert!(got.result.approx_eq(&want.result, EPS));
    }

    let err = match sys.explain_sql("SELECT * FROM nowhere", Config::OptC) {
        Err(e) => e,
        Ok(_) => panic!("unknown table must be a frontend error"),
    };
    assert!(err.message.contains("nowhere"), "{err}");
}

/// The adaptive-estimation loop: a mis-estimated query run twice through
/// one `QueryService` session self-corrects — the second `OptReport`'s
/// estimate strictly improves (to the observed cardinality) while the
/// result stays bit-identical. Under CI's `LEGOBASE_FEEDBACK=0` leg the
/// same test asserts the ablation: no absorption, estimates unchanged,
/// results identical either way — feedback only ever touches estimates.
#[test]
fn feedback_loop_sharpens_repeated_queries() {
    let optimize_off =
        std::env::var("LEGOBASE_OPTIMIZE").is_ok_and(|v| matches!(v.trim(), "0" | "false" | "off"));
    if optimize_off {
        return; // no OptReport to correct
    }
    let feedback_off =
        std::env::var("LEGOBASE_FEEDBACK").is_ok_and(|v| matches!(v.trim(), "0" | "false" | "off"));
    let service =
        LegoBase::generate(SCALE).serve_with(legobase::ServeOptions::default().with_workers(1));
    let session = service.session();
    // Q18's one-group result is badly over-estimated cold (the committed
    // bound in tests/estimation_error.rs documents by how much).
    let sql = legobase::sql::tpch_sql(18);
    let first = session.run_sql(sql, Config::OptC).expect("Q18");
    let second = session.run_sql(sql, Config::OptC).expect("Q18 repeated");
    assert!(first.result.rows() == second.result.rows(), "feedback must never change results");
    let (a, b) = (first.opt.expect("first report"), second.opt.expect("second report"));
    let actual = (first.result.len() as f64).max(1.0);
    let q_error = |est: f64| {
        let est = est.max(1.0);
        (est / actual).max(actual / est)
    };
    assert!(q_error(a.est_rows()) > 2.0, "Q18 must start mis-estimated: {}", a.summary());
    if feedback_off {
        assert!(!b.root().feedback_applied, "ablated loop must not correct:\n{}", b.summary());
        assert_eq!(a.est_rows(), b.est_rows(), "ablated loop must leave estimates alone");
    } else {
        assert!(b.root().feedback_applied, "second run must be corrected:\n{}", b.summary());
        assert!(
            q_error(b.est_rows()) < q_error(a.est_rows()),
            "estimates must strictly improve: {} -> {} (actual {actual})",
            a.est_rows(),
            b.est_rows(),
        );
        assert_eq!(
            b.est_rows(),
            first.result.len() as f64,
            "the loop converges on the observed cardinality"
        );
        assert!(b.summary().contains("feedback-corrected"), "{}", b.summary());
    }
    service.shutdown();
}

// ---------------------------------------------------------------------
// Property tests: random plans are result-invariant under each rewrite
// rule (compact sibling of tests/random_plans.rs).
// ---------------------------------------------------------------------

/// A filter over one of the four menu tables.
fn filter_expr(table: &str, pick: usize, frac: f64) -> Expr {
    let (col, value) = match table {
        "customer" => match pick % 2 {
            0 => (0, Value::Int(1 + (300.0 * frac) as i64)),
            _ => (5, Value::Float(-1000.0 + 11000.0 * frac)),
        },
        "orders" => match pick % 3 {
            0 => (1, Value::Int(1 + (300.0 * frac) as i64)),
            1 => (3, Value::Float(1000.0 + 399_000.0 * frac)),
            _ => (4, Value::Date(Date::from_ymd(1992 + (frac * 6.0) as i32, 6, 1))),
        },
        "nation" => (2, Value::Int((4.0 * frac) as i64)),
        _ => match pick % 3 {
            0 => (4, Value::Float(1.0 + 49.0 * frac)),
            1 => (6, Value::Float(0.1 * frac)),
            _ => (10, Value::Date(Date::from_ymd(1993 + (frac * 5.0) as i32, 3, 1))),
        },
    };
    let op = [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge][pick % 4];
    Expr::cmp(op, Expr::col(col), Expr::lit(value))
}

/// A random plan: a chain of joins along real key relationships (all four
/// join kinds), filters above and below, and an optional aggregation /
/// sort / limit / distinct tail.
fn arb_plan() -> impl Strategy<Value = Plan> {
    let join_menu = proptest::sample::select(vec![
        // (left, right, lkey, rkey, left arity)
        ("customer", "orders", 0usize, 1usize, 8usize),
        ("nation", "customer", 0usize, 3usize, 4usize),
        ("orders", "lineitem", 0usize, 0usize, 9usize),
    ]);
    (
        (join_menu, 0usize..4, 0usize..4), // (menu, join kind, tail)
        (any::<bool>(), any::<bool>(), any::<bool>()), // filters: left/right/above
        0usize..8,
        0.0f64..1.0,
    )
        .prop_map(|((menu, kind, tail), (fl, fr, fa), pick, frac)| {
            let (lt, rt, lk, rk, larity) = menu;
            let kind = [JoinKind::Inner, JoinKind::LeftOuter, JoinKind::Semi, JoinKind::Anti][kind];
            let mut left = Plan::scan(lt);
            if fl {
                left = Plan::filtered(left, filter_expr(lt, pick, frac));
            }
            let mut right = Plan::scan(rt);
            if fr {
                right = Plan::filtered(right, filter_expr(rt, pick.wrapping_add(1), 1.0 - frac));
            }
            let mut plan = Plan::hash_join(left, right, vec![lk], vec![rk], kind, None);
            if fa {
                plan = Plan::filtered(plan, filter_expr(lt, pick.wrapping_add(2), frac));
            }
            // LIMIT after a sort is only plan-rewrite-invariant when the
            // sort keys are unique (ties would make the cut depend on the
            // pre-sort row order, which reordering legitimately changes):
            // sort by the right side's row identity plus the left key.
            let unique_sort: Vec<(usize, SortOrder)> =
                if matches!(kind, JoinKind::Semi | JoinKind::Anti) {
                    vec![(lk, SortOrder::Desc)] // left rows are key-unique
                } else {
                    vec![
                        (larity, SortOrder::Desc),
                        (larity + 3, SortOrder::Asc),
                        (0, SortOrder::Asc),
                    ]
                };
            match tail {
                1 => Plan::aggregated(
                    plan,
                    vec![lk],
                    vec![AggSpec::new(AggKind::Count, Expr::lit(1i64), "n")],
                ),
                2 => Plan::limited(Plan::sorted(plan, unique_sort), 13),
                3 => Plan::deduplicated(Plan::projected(
                    plan,
                    vec![(Expr::col(0), "a".to_string()), (Expr::col(1), "b".to_string())],
                )),
                _ => plan,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random plans are result-invariant under every pass combination.
    #[test]
    fn random_plans_invariant_under_rewrites(plan in arb_plan(), which in 0usize..4) {
        let sys = system();
        let q = QueryPlan::new("prop", plan);
        let passes = match which {
            0 => Passes { pushdown: true, inference: false, join_reorder: false },
            1 => Passes { pushdown: false, inference: true, join_reorder: false },
            2 => Passes { pushdown: false, inference: false, join_reorder: true },
            _ => Passes::all(),
        };
        let (rewritten, _) = optimizer::rewrite(&q, &sys.data.catalog, passes);
        let want = sys.run_plan(&q, &Config::OptC.settings());
        let got = sys.run_plan(&rewritten, &Config::OptC.settings());
        prop_assert!(
            got.result.approx_eq(&want.result, EPS),
            "passes {passes:?}: {}\nplan: {q:?}",
            got.result.diff(&want.result, EPS).unwrap_or_default()
        );
        // And the rewrite is equally invariant under the interpreted
        // Volcano engine (same-engine comparison: original vs rewritten).
        let dbx_orig = sys.run_plan(&q, &Config::Dbx.settings());
        let dbx_rw = sys.run_plan(&rewritten, &Config::Dbx.settings());
        prop_assert!(
            dbx_rw.result.approx_eq(&dbx_orig.result, EPS),
            "Dbx: {}",
            dbx_rw.result.diff(&dbx_orig.result, EPS).unwrap_or_default()
        );
    }
}
