//! Workspace wiring smoke test.
//!
//! The cheapest end-to-end guard for the manifests themselves: generate a
//! tiny TPC-H database through `legobase_tpch::gen` directly (exercising the
//! `tpch` → `storage` edge), hand it to the `legobase` facade (exercising
//! `core` → `sc`/`engine`/`queries`), and check that the interpreted Volcano
//! engine and the fully specialized executor agree. If any inter-crate
//! dependency edge or feature wiring regresses, this fails before the heavy
//! equivalence suites even build.

use legobase::engine::settings::EngineKind;
use legobase::{Config, LegoBase};
use legobase_tpch::gen::TpchData;

#[test]
fn volcano_and_specialized_agree_on_generated_data() {
    let data = TpchData::generate(0.002);
    assert!(data.catalog.names().count() >= 8, "all eight TPC-H relations generated");

    let system = LegoBase::from_data(data);

    let volcano = Config::Dbx;
    let specialized = Config::OptC;
    assert_eq!(volcano.settings().engine, EngineKind::Volcano);
    assert_eq!(specialized.settings().engine, EngineKind::Specialized);

    for q in [1usize, 6] {
        let baseline = system.run(q, volcano);
        let optimized = system.run(q, specialized);
        assert!(
            optimized.result.approx_eq(&baseline.result, 1e-6),
            "Q{q}: volcano and specialized engines disagree:\n--- volcano ---\n{}\n--- specialized ---\n{}",
            baseline.result.display(10),
            optimized.result.display(10),
        );
        assert!(
            !optimized.compilation.c_source.is_empty(),
            "Q{q}: SC pipeline produced no C source"
        );
    }
}
