//! The unified request API (PR 9's api_redesign): one `QueryRequest` in,
//! one `QueryResponse`/`QueryError` out, on every surface — and the four
//! legacy entry points reduced to thin wrappers that must stay
//! behavior-identical. Also pins the lossless error mapping: converting
//! between `ServiceError` and `QueryError` never collapses a variant to a
//! string and never drops a field (spans included).

use legobase::sql::tpch_sql;
use legobase::sql::{Span, SqlError};
use legobase::{
    wire, Config, LegoBase, QueryError, QueryRequest, ServeOptions, ServiceError, Settings,
};
use std::time::Duration;

const SCALE: f64 = 0.002;

/// `run_sql` / `run_sql_with_settings` / `run_plan` are wrappers over
/// `query()`: same bytes, same metadata, for a sample of queries.
#[test]
fn legacy_facade_wrappers_match_the_unified_path() {
    let sys = LegoBase::generate(SCALE);
    for n in [1usize, 6, 19] {
        let legacy = sys.run_sql(tpch_sql(n), Config::OptC).expect("legacy run_sql");
        let unified = sys
            .query(&QueryRequest::sql(tpch_sql(n)).with_config(Config::OptC))
            .expect("unified query");
        assert_eq!(
            wire::encode_batch(unified.result.rows()),
            wire::encode_batch(legacy.result.rows()),
            "Q{n}: wrapper and unified path disagree"
        );
        assert_eq!(
            unified.opt.is_some(),
            legacy.opt.is_some(),
            "Q{n}: optimizer report presence must match"
        );
        let detail = unified.detail.expect("facade responses carry run detail");
        assert!(detail.memory_bytes > 0 && !detail.compilation.c_source.is_empty());

        let plan = sys.plan(n);
        let legacy = sys.run_plan(&plan, &Settings::optimized());
        let unified = sys
            .query(&QueryRequest::plan(plan).with_settings(Settings::optimized()))
            .expect("plan requests cannot fail without budget or deadline");
        assert_eq!(
            wire::encode_batch(unified.result.rows()),
            wire::encode_batch(legacy.result.rows()),
            "Q{n}: plan wrapper and unified path disagree"
        );
        assert!(unified.opt.is_none(), "hand plans never carry an optimizer report");
    }
}

/// `explain_sql` is a wrapper over `query(..).with_explain(true)`.
#[test]
fn explain_wrapper_matches_the_unified_path() {
    let sys = LegoBase::generate(SCALE);
    let legacy = sys.explain_sql(tpch_sql(6), Config::OptC).expect("legacy explain");
    let unified = sys
        .query(&QueryRequest::sql(tpch_sql(6)).with_config(Config::OptC).with_explain(true))
        .expect("unified explain");
    assert_eq!(Some(legacy.sql), unified.explanation);
    assert_eq!(legacy.report.is_some(), unified.opt.is_some());
    assert!(unified.result.rows().is_empty(), "explain executes nothing");
    assert!(unified.plan.is_some(), "in-process explain carries the plan");
}

/// Session legacy wrappers ride the same unified implementation: identical
/// bytes and identical typed errors.
#[test]
fn legacy_session_wrappers_match_the_unified_path() {
    let service = LegoBase::generate(SCALE).serve_with(ServeOptions::default().with_workers(2));
    let session = service.session();
    let legacy = session.run_sql(tpch_sql(6), Config::OptC).expect("legacy session run_sql");
    let unified = session
        .query(&QueryRequest::sql(tpch_sql(6)).with_config(Config::OptC))
        .expect("unified session query");
    assert_eq!(wire::encode_batch(unified.result.rows()), wire::encode_batch(legacy.result.rows()));
    // The wrapper's second run hits the caches populated by the unified
    // call — one shared implementation, one shared cache path.
    let again = session.run_sql(tpch_sql(6), Config::OptC).unwrap();
    assert!(again.plan_cached && again.prepared_cached);

    // Typed errors: the legacy surface reports the ServiceError twin of
    // the unified QueryError, span intact.
    let bad = "SELECT count(*) AS n FROM lineitm";
    let legacy_err = match session.run_sql(bad, Config::OptC) {
        Err(ServiceError::Sql(e)) => e,
        other => panic!("expected SQL error, got {:?}", other.map(|_| "ok")),
    };
    let unified_err = match session.query(&QueryRequest::sql(bad)) {
        Err(QueryError::Sql(e)) => e,
        other => panic!("expected SQL error, got {:?}", other.map(|_| "ok")),
    };
    assert_eq!(legacy_err.message, unified_err.message);
    assert_eq!(legacy_err.span, unified_err.span);
    service.shutdown();
}

/// A request-level memory budget overrides the session default (and the
/// other way around: a session budget applies when the request sets none).
#[test]
fn request_budget_overrides_session_budget() {
    let service = LegoBase::generate(SCALE).serve_with(ServeOptions::default().with_workers(2));
    let session = service.session().with_memory_budget(1); // reject everything
    match session.query(&QueryRequest::sql(tpch_sql(6))) {
        Err(QueryError::OverBudget { budget_bytes: 1, .. }) => {}
        other => panic!(
            "session budget must apply: {:?}",
            other.map(|_| "ok").map_err(|e| e.to_string())
        ),
    }
    // The request's own (generous) budget wins over the session's.
    session
        .query(&QueryRequest::sql(tpch_sql(6)).with_memory_budget(usize::MAX))
        .expect("request budget overrides session budget");
    service.shutdown();
}

/// The lossless-conversion satellite: every `ServiceError` variant maps to
/// its own `QueryError` variant and back with every field preserved — no
/// variant is ever collapsed into a string, and the SQL span survives.
#[test]
fn error_conversions_are_lossless_in_both_directions() {
    let cases: Vec<ServiceError> = vec![
        ServiceError::Sql(SqlError {
            message: "no table `lineitm`".into(),
            span: Span { start: 26, end: 33 },
        }),
        ServiceError::OverBudget { estimated_bytes: 777, budget_bytes: 42, query: "q1".into() },
        ServiceError::ShuttingDown,
        ServiceError::QueryPanicked { query: "Q9".into(), message: "kernel boom".into() },
        ServiceError::DeadlineExceeded {
            query: "Q4".into(),
            deadline: Duration::from_millis(3),
            elapsed: Duration::from_millis(9),
        },
    ];
    for original in cases {
        let description = original.to_string();
        let unified: QueryError = original.into();
        // Forward: the variant is structural, not a stringification.
        match &unified {
            QueryError::Sql(e) => {
                assert_eq!(e.message, "no table `lineitm`");
                assert_eq!(e.span, Span { start: 26, end: 33 }, "span must survive conversion");
            }
            QueryError::OverBudget { estimated_bytes, budget_bytes, query } => {
                assert_eq!((*estimated_bytes, *budget_bytes, query.as_str()), (777, 42, "q1"));
            }
            QueryError::ShuttingDown => {}
            QueryError::QueryPanicked { query, message } => {
                assert_eq!((query.as_str(), message.as_str()), ("Q9", "kernel boom"));
            }
            QueryError::DeadlineExceeded { query, deadline, elapsed } => {
                assert_eq!(query, "Q4");
                assert_eq!(*deadline, Duration::from_millis(3));
                assert_eq!(*elapsed, Duration::from_millis(9));
            }
        }
        // Round trip: back to ServiceError with the same rendering (the
        // Display strings agree because the fields all survived).
        let back: ServiceError = unified.into();
        assert_eq!(back.to_string(), description);
        assert!(
            std::error::Error::source(&back).is_some() == matches!(back, ServiceError::Sql(_)),
            "the SQL source chain survives the round trip"
        );
    }
}

/// Facade deadline semantics: expiry is typed, completion is byte-stable.
#[test]
fn facade_deadlines_are_typed_and_nonintrusive() {
    let sys = LegoBase::generate(SCALE);
    match sys.query(&QueryRequest::sql(tpch_sql(1)).with_deadline(Duration::from_nanos(1))) {
        Err(QueryError::DeadlineExceeded { deadline, .. }) => {
            assert_eq!(deadline, Duration::from_nanos(1))
        }
        other => panic!(
            "expected DeadlineExceeded: {:?}",
            other.map(|_| "ok").map_err(|e| e.to_string())
        ),
    }
    let with = sys
        .query(&QueryRequest::sql(tpch_sql(6)).with_deadline(Duration::from_secs(300)))
        .expect("generous deadline");
    let without = sys.query(&QueryRequest::sql(tpch_sql(6))).expect("no deadline");
    assert_eq!(wire::encode_batch(with.result.rows()), wire::encode_batch(without.result.rows()));
}
