//! Cross-engine edge-case tests: plan shapes and inputs the TPC-H queries do
//! not exercise. Every configuration of Table III must agree with the
//! Volcano reference on all of them — empty inputs, zero limits, duplicate
//! elimination, computed projections, and aggregates over filtered-out data.

use legobase::engine::expr::{AggKind, Expr};
use legobase::engine::plan::{AggSpec, JoinKind, Plan, QueryPlan, SortOrder};
use legobase::{Config, LegoBase};
use std::sync::OnceLock;

fn system() -> &'static LegoBase {
    static SYSTEM: OnceLock<LegoBase> = OnceLock::new();
    SYSTEM.get_or_init(|| LegoBase::generate(0.005))
}

/// Runs a plan under every configuration and checks agreement with DBX.
fn check_all(name: &str, plan: Plan) {
    let q = QueryPlan::new(name, plan);
    let sys = system();
    let reference = sys.run_plan(&q, &Config::Dbx.settings()).result;
    for cfg in Config::ALL {
        if cfg == Config::Dbx {
            continue;
        }
        let got = sys.run_plan(&q, &cfg.settings()).result;
        assert!(
            got.approx_eq(&reference, 1e-6),
            "{name}: {cfg:?} disagrees with DBX: {:?}",
            got.diff(&reference, 1e-6)
        );
    }
}

/// A predicate no region row satisfies (r_regionkey is 0..5).
fn impossible() -> Expr {
    Expr::lt(Expr::col(0), Expr::lit(0i64))
}

#[test]
fn limit_zero_returns_nothing() {
    check_all("limit0", Plan::Limit { input: Box::new(Plan::scan("region")), n: 0 });
}

#[test]
fn limit_beyond_input_is_identity() {
    check_all("limit_large", Plan::Limit { input: Box::new(Plan::scan("region")), n: 1_000_000 });
}

#[test]
fn distinct_collapses_duplicates() {
    // nation.n_regionkey has 5 distinct values over 25 rows.
    check_all(
        "distinct_regionkeys",
        Plan::Distinct {
            input: Box::new(Plan::Project {
                input: Box::new(Plan::scan("nation")),
                exprs: vec![(Expr::col(2), "n_regionkey".into())],
            }),
        },
    );
}

#[test]
fn project_computed_expressions() {
    check_all(
        "computed_projection",
        Plan::Project {
            input: Box::new(Plan::scan("nation")),
            exprs: vec![
                (Expr::col(0), "key".into()),
                (Expr::add(Expr::mul(Expr::col(0), Expr::lit(3i64)), Expr::col(2)), "mix".into()),
                (
                    Expr::case(
                        Expr::lt(Expr::col(2), Expr::lit(2i64)),
                        Expr::lit(1i64),
                        Expr::lit(0i64),
                    ),
                    "flag".into(),
                ),
            ],
        },
    );
}

#[test]
fn select_nothing_then_global_aggregate() {
    // SQL: a global aggregate over an empty input still returns one row
    // (COUNT = 0, SUM/AVG/MIN/MAX = NULL).
    check_all(
        "empty_global_agg",
        Plan::Agg {
            input: Box::new(Plan::Select {
                input: Box::new(Plan::scan("region")),
                predicate: impossible(),
            }),
            group_by: vec![],
            aggs: vec![
                AggSpec::new(AggKind::Count, Expr::lit(1i64), "n"),
                AggSpec::new(AggKind::Sum, Expr::col(0), "s"),
                AggSpec::new(AggKind::Min, Expr::col(0), "lo"),
                AggSpec::new(AggKind::Max, Expr::col(0), "hi"),
            ],
        },
    );
}

#[test]
fn select_nothing_then_grouped_aggregate() {
    // A grouped aggregate over an empty input returns zero rows.
    check_all(
        "empty_grouped_agg",
        Plan::Agg {
            input: Box::new(Plan::Select {
                input: Box::new(Plan::scan("nation")),
                predicate: impossible(),
            }),
            group_by: vec![2],
            aggs: vec![AggSpec::new(AggKind::Count, Expr::lit(1i64), "n")],
        },
    );
}

#[test]
fn join_against_empty_side() {
    for kind in [JoinKind::Inner, JoinKind::LeftOuter, JoinKind::Semi, JoinKind::Anti] {
        check_all(
            &format!("empty_build_{kind:?}"),
            Plan::Agg {
                input: Box::new(Plan::HashJoin {
                    left: Box::new(Plan::Select {
                        input: Box::new(Plan::scan("nation")),
                        predicate: impossible(),
                    }),
                    right: Box::new(Plan::scan("customer")),
                    left_keys: vec![0],
                    right_keys: vec![3],
                    kind,
                    residual: None,
                }),
                group_by: vec![],
                aggs: vec![AggSpec::new(AggKind::Count, Expr::lit(1i64), "n")],
            },
        );
    }
}

#[test]
fn sort_limit_composition() {
    // Top-3 nations by key, descending — exercises Sort+Limit interplay.
    check_all(
        "top3",
        Plan::Limit {
            input: Box::new(Plan::Sort {
                input: Box::new(Plan::scan("nation")),
                keys: vec![(0, SortOrder::Desc)],
            }),
            n: 3,
        },
    );
}

#[test]
fn self_join_on_region() {
    // nation ⋈ nation on regionkey: checks key packing over a small
    // duplicate-heavy domain (25×25/5 = 125 pairs).
    check_all(
        "self_join",
        Plan::Agg {
            input: Box::new(Plan::HashJoin {
                left: Box::new(Plan::scan("nation")),
                right: Box::new(Plan::scan("nation")),
                left_keys: vec![2],
                right_keys: vec![2],
                kind: JoinKind::Inner,
                residual: None,
            }),
            group_by: vec![],
            aggs: vec![AggSpec::new(AggKind::Count, Expr::lit(1i64), "n")],
        },
    );
}

#[test]
fn multi_stage_query_with_view() {
    // A Q15-style staged query: materialize per-nation customer counts, then
    // join the stage back against nation. Exercises `#stage` buffer scans
    // through every engine (the one plan shape TPC-H queries use that the
    // random generator does not).
    let stage = Plan::Agg {
        input: Box::new(Plan::scan("customer")),
        group_by: vec![3], // c_nationkey
        aggs: vec![AggSpec::new(AggKind::Count, Expr::lit(1i64), "n_customers")],
    };
    let root = Plan::Sort {
        input: Box::new(Plan::HashJoin {
            left: Box::new(Plan::scan("#counts")),
            right: Box::new(Plan::scan("nation")),
            left_keys: vec![0],
            right_keys: vec![0],
            kind: JoinKind::Inner,
            residual: None,
        }),
        keys: vec![(0, SortOrder::Asc)],
    };
    let q = QueryPlan::new("staged", root).with_stage("counts", stage);
    let sys = system();
    let reference = sys.run_plan(&q, &Config::Dbx.settings()).result;
    for cfg in Config::ALL {
        if cfg == Config::Dbx {
            continue;
        }
        let got = sys.run_plan(&q, &cfg.settings()).result;
        assert!(
            got.approx_eq(&reference, 1e-6),
            "staged: {cfg:?} disagrees with DBX: {:?}",
            got.diff(&reference, 1e-6)
        );
    }
}

#[test]
fn distinct_on_empty_input() {
    check_all(
        "distinct_empty",
        Plan::Distinct {
            input: Box::new(Plan::Select {
                input: Box::new(Plan::scan("region")),
                predicate: impossible(),
            }),
        },
    );
}
