//! A minimal, dependency-free, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small slice of `rand` it actually uses: [`rngs::SmallRng`], seeded
//! deterministically via [`SeedableRng::seed_from_u64`], driven through
//! [`Rng::gen_range`] / [`Rng::gen_bool`]. The generator is xoshiro256**, the
//! same family the real `SmallRng` uses on 64-bit targets; streams are
//! deterministic for a given seed, which is all the TPC-H generator requires
//! (it does not promise bit-compatibility with upstream `rand`).

#![warn(missing_docs)]

/// Types which can be constructed deterministically from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// A uniform value in the given range (`a..b` or `a..=b`).
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

/// A uniform f64 in `[0, 1)` from 53 random bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range types from which a uniform sample can be drawn, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add((reduce(rng.next_u64(), span as u64) as $u) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $u).wrapping_sub(start as $u).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((reduce(rng.next_u64(), span as u64) as $u) as $t)
            }
        }
    )*};
}

impl_int_range!(
    i8 => u8, i16 => u16, i32 => u32, i64 => u64,
    u8 => u8, u16 => u16, u32 => u32, u64 => u64,
    usize => usize, isize => usize,
);

/// Maps a uniform `u64` onto `0..span` (Lemire reduction; span > 0).
fn reduce(x: u64, span: u64) -> u64 {
    if span == 0 {
        return x;
    }
    ((x as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                start + (end - start) * u
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as upstream rand does for small seeds.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let y = rng.gen_range(1u32..=7);
            assert!((1..=7).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn bool_probabilities() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
