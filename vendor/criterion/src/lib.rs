//! A minimal, dependency-free, API-compatible subset of the `criterion`
//! benchmark harness.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the slice of criterion its benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Instead of criterion's bootstrapped statistics
//! it reports min/median/mean over a fixed sample count — enough to compare
//! the paper's configurations, not a substitute for the real harness.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver. Collects nothing globally; each group times and
/// prints its own results.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Overrides the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: if self.sample_size == 0 { 10 } else { self.sample_size },
            _criterion: self,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("ungrouped");
        group.bench_function(id, f);
        group.finish();
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Times `f` under `id` within this group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        bencher.report(&self.name, &id.0);
    }

    /// Times `f` under `id`, passing it a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let id = id.into();
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.0);
    }

    /// Ends the group (upstream flushes reports here; ours prints eagerly).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// An id that is just the parameter (for groups iterating one axis).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl<S: Into<String>> From<S> for BenchmarkId {
    fn from(s: S) -> Self {
        BenchmarkId(s.into())
    }
}

/// Passed to the benchmark closure; collects timed samples.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` calls of `routine` (after one warm-up call).
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    fn report(&mut self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples (Bencher::iter never called)");
            return;
        }
        self.samples.sort();
        let min = self.samples[0];
        let median = self.samples[self.samples.len() / 2];
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{group}/{id}: min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
            min,
            median,
            mean,
            self.samples.len()
        );
    }
}

/// Declares a function running the listed benchmarks with one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_function("f", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 4); // warm-up + 3 samples
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("f", 7), &21usize, |b, &x| {
            b.iter(|| assert_eq!(x * 2, 42))
        });
        group.finish();
    }
}
