//! A minimal, dependency-free, API-compatible subset of the `proptest`
//! property-testing framework.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the slice of proptest its tests use: the [`strategy::Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `prop_recursive` / `boxed`, range and tuple
//! strategies, [`strategy::Just`], [`arbitrary::any`], regex-subset string
//! strategies (`"[a-d]{0,6}"`), [`collection::vec`], [`sample::select`],
//! weighted [`prop_oneof!`], and the [`proptest!`] test macro with
//! `prop_assert*!` / `prop_assume!`.
//!
//! Differences from upstream, by design:
//!
//! * **no shrinking** — a failing case panics with its generated inputs; the
//!   run is deterministic (seed derived from the test name, overridable with
//!   `PROPTEST_SEED`), so failures reproduce exactly;
//! * **regex strategies** support only the subset the tests use: literals,
//!   classes (`[a-dx]`), groups, alternation, and `{n}` / `{n,m}` / `*` /
//!   `+` / `?` quantifiers;
//! * `prop_recursive` pre-builds a bounded-depth union instead of lazily
//!   recursing.

#![warn(missing_docs)]

/// Test-case configuration and the deterministic RNG driving generation.
pub mod test_runner {
    /// Configuration for a `proptest!` block (subset: case count only).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// The deterministic generator used for one test case (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// A generator whose stream is a pure function of `(test name, case
        /// index)`, plus the optional `PROPTEST_SEED` environment override.
        pub fn deterministic(test_name: &str, case: u32) -> Self {
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
            for b in test_name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            if let Ok(v) = std::env::var("PROPTEST_SEED") {
                if let Ok(extra) = v.parse::<u64>() {
                    seed ^= extra.rotate_left(17);
                }
            }
            Self::from_seed(seed ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        }

        /// A generator from a raw seed (SplitMix64-expanded).
        pub fn from_seed(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng { s: [next(), next(), next(), next()] }
        }

        /// The raw 64-bit output of the generator.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// A uniform value in `0..n` (`n` > 0).
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// A uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and its combinators.
pub mod strategy {
    use crate::string::generate_matching;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::rc::Rc;

    /// A recipe for generating values of type `Self::Value`.
    ///
    /// Unlike upstream proptest there is no value tree: strategies generate
    /// final values directly and nothing shrinks.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms every generated value with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F, O>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f, _marker: PhantomData }
        }

        /// Generates an intermediate value, then generates from the strategy
        /// `f` derives from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F, S>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f, _marker: PhantomData }
        }

        /// A bounded-depth recursive strategy: at each of `depth` levels the
        /// generator picks the base strategy or one produced by `recurse`
        /// applied to the previous level.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base: BoxedStrategy<Self::Value> = self.boxed();
            let mut current = base.clone();
            for _ in 0..depth {
                let deeper = recurse(current).boxed();
                current = Union::weighted(vec![(1, base.clone()), (2, deeper)]).boxed();
            }
            current
        }

        /// Erases the strategy's concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// A strategy that always yields a clone of its value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F, O> {
        source: S,
        f: F,
        _marker: PhantomData<fn() -> O>,
    }

    impl<S, F, O> Strategy for Map<S, F, O>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F, S2> {
        source: S,
        f: F,
        _marker: PhantomData<fn() -> S2>,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F, S2>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            let intermediate = self.source.generate(rng);
            (self.f)(intermediate).generate(rng)
        }
    }

    /// A weighted choice among strategies of one value type (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` arms.
        pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! weights sum to zero");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (weight, arm) in &self.arms {
                if pick < *weight as u64 {
                    return arm.generate(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("weighted pick exceeded total weight")
        }
    }

    macro_rules! numeric_range_strategy {
        (int: $($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
        (float: $($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (hi - lo) * rng.unit_f64() as $t
                }
            }
        )*};
    }

    numeric_range_strategy!(int: i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);
    numeric_range_strategy!(float: f32, f64);

    /// String literals are regex strategies generating matching strings.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_matching(self, rng)
        }
    }

    macro_rules! tuple_strategy {
        ($($S:ident => $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A => 0);
    tuple_strategy!(A => 0, B => 1);
    tuple_strategy!(A => 0, B => 1, C => 2);
    tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
    tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4);
    tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);
}

/// The [`any`](arbitrary::any) entry point for canonical strategies.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy (subset of upstream `Arbitrary`).
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary_with_rng(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_with_rng(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary_with_rng(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_with_rng(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// Collection strategies (subset: `vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length distribution for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of values from `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Sampling strategies (subset: `select`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`select`].
    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }

    /// Picks uniformly from a non-empty list of items.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select requires a non-empty list");
        Select { items }
    }
}

/// Generation of strings matching a small regex subset.
pub mod string {
    use crate::test_runner::TestRng;

    #[derive(Debug)]
    enum Node {
        Literal(char),
        Class(Vec<(char, char)>),
        Group(Vec<Vec<Node>>),
        Repeat(Box<Node>, u32, u32),
    }

    struct Parser<'a> {
        chars: std::iter::Peekable<std::str::Chars<'a>>,
        pattern: &'a str,
    }

    impl Parser<'_> {
        fn fail(&self, what: &str) -> ! {
            panic!("unsupported regex {:?}: {what}", self.pattern)
        }

        /// alternation := sequence ('|' sequence)*
        fn alternation(&mut self) -> Vec<Vec<Node>> {
            let mut alternatives = vec![self.sequence()];
            while self.chars.peek() == Some(&'|') {
                self.chars.next();
                alternatives.push(self.sequence());
            }
            alternatives
        }

        /// sequence := (atom quantifier?)*
        fn sequence(&mut self) -> Vec<Node> {
            let mut nodes = Vec::new();
            while let Some(&c) = self.chars.peek() {
                if c == '|' || c == ')' {
                    break;
                }
                let atom = self.atom();
                nodes.push(self.quantified(atom));
            }
            nodes
        }

        fn atom(&mut self) -> Node {
            match self.chars.next() {
                Some('(') => {
                    let inner = self.alternation();
                    if self.chars.next() != Some(')') {
                        self.fail("unclosed group");
                    }
                    Node::Group(inner)
                }
                Some('[') => Node::Class(self.class()),
                Some('\\') => match self.chars.next() {
                    Some(c) => Node::Literal(c),
                    None => self.fail("dangling escape"),
                },
                Some(c) if !"{}*+?".contains(c) => Node::Literal(c),
                Some(_) => self.fail("quantifier without atom"),
                None => self.fail("unexpected end"),
            }
        }

        fn class(&mut self) -> Vec<(char, char)> {
            let mut ranges = Vec::new();
            loop {
                match self.chars.next() {
                    Some(']') if !ranges.is_empty() => return ranges,
                    Some(lo) => {
                        if self.chars.peek() == Some(&'-') {
                            self.chars.next();
                            match self.chars.next() {
                                Some(hi) if hi != ']' => ranges.push((lo, hi)),
                                _ => self.fail("bad class range"),
                            }
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    None => self.fail("unclosed class"),
                }
            }
        }

        fn quantified(&mut self, atom: Node) -> Node {
            let (lo, hi) = match self.chars.peek() {
                Some('*') => (0, 4),
                Some('+') => (1, 4),
                Some('?') => (0, 1),
                Some('{') => {
                    self.chars.next();
                    let lo = self.number();
                    let hi = match self.chars.next() {
                        Some('}') => lo,
                        Some(',') => {
                            let hi = self.number();
                            if self.chars.next() != Some('}') {
                                self.fail("unclosed quantifier");
                            }
                            hi
                        }
                        _ => self.fail("bad quantifier"),
                    };
                    return Node::Repeat(Box::new(atom), lo, hi);
                }
                _ => return atom,
            };
            self.chars.next();
            Node::Repeat(Box::new(atom), lo, hi)
        }

        fn number(&mut self) -> u32 {
            let mut digits = String::new();
            while let Some(c) = self.chars.peek() {
                if c.is_ascii_digit() {
                    digits.push(*c);
                    self.chars.next();
                } else {
                    break;
                }
            }
            if digits.is_empty() {
                self.fail("expected number in quantifier");
            }
            digits.parse().unwrap()
        }
    }

    fn emit(nodes: &[Node], rng: &mut TestRng, out: &mut String) {
        for node in nodes {
            emit_one(node, rng, out);
        }
    }

    fn emit_one(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Literal(c) => out.push(*c),
            Node::Class(ranges) => {
                let total: u64 = ranges.iter().map(|(lo, hi)| (*hi as u64 - *lo as u64) + 1).sum();
                let mut pick = rng.below(total);
                for (lo, hi) in ranges {
                    let span = (*hi as u64 - *lo as u64) + 1;
                    if pick < span {
                        out.push(char::from_u32(*lo as u32 + pick as u32).unwrap());
                        return;
                    }
                    pick -= span;
                }
            }
            Node::Group(alternatives) => {
                let choice = rng.below(alternatives.len() as u64) as usize;
                emit(&alternatives[choice], rng, out);
            }
            Node::Repeat(inner, lo, hi) => {
                let count = lo + rng.below((hi - lo + 1) as u64) as u32;
                for _ in 0..count {
                    emit_one(inner, rng, out);
                }
            }
        }
    }

    /// Generates one string matching `pattern` (regex subset; see module
    /// docs). Panics on constructs outside the subset.
    pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
        let mut parser = Parser { chars: pattern.chars().peekable(), pattern };
        let alternatives = parser.alternation();
        if parser.chars.next().is_some() {
            parser.fail("trailing input");
        }
        let mut out = String::new();
        let choice = rng.below(alternatives.len() as u64) as usize;
        emit(&alternatives[choice], rng, &mut out);
        out
    }
}

/// The conventional glob import for tests.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a `proptest!` case (no shrinking; panics).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return;
        }
    };
}

/// A weighted (`w => strategy`) or uniform choice among strategies with a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let mut case_body = || $body;
                case_body();
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_vecs() {
        let mut rng = TestRng::deterministic("shim::basic", 0);
        let strat = crate::collection::vec((0u64..8, -5i64..5), 3..9);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((3..9).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 8);
                assert!((-5..5).contains(&b));
            }
        }
    }

    #[test]
    fn oneof_respects_arms() {
        let mut rng = TestRng::deterministic("shim::oneof", 0);
        let strat = prop_oneof![Just(1usize), Just(2), Just(3)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[strat.generate(&mut rng)] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn regex_subset_shapes() {
        let mut rng = TestRng::deterministic("shim::regex", 0);
        for _ in 0..200 {
            let s = "[a-d]{0,6}".generate(&mut rng);
            assert!(s.len() <= 6 && s.chars().all(|c| ('a'..='d').contains(&c)), "{s:?}");
            let w = "([a-c]{1,3} ){0,5}[a-c]{1,3}".generate(&mut rng);
            assert!(w.split(' ').all(|t| (1..=3).contains(&t.len())), "{w:?}");
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        let leaf = (0i64..10).prop_map(|x| x);
        let strat =
            leaf.prop_recursive(3, 8, 2, |inner| (inner.clone(), inner).prop_map(|(a, b)| a + b));
        let mut rng = TestRng::deterministic("shim::recursive", 0);
        for _ in 0..100 {
            let _ = strat.generate(&mut rng);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: patterns, `mut` bindings, assume, asserts.
        #[test]
        fn macro_end_to_end(mut xs in crate::collection::vec(0u32..100, 0..10), flip in any::<bool>()) {
            prop_assume!(xs.len() != 9);
            xs.sort_unstable();
            if flip {
                xs.reverse();
            }
            prop_assert!(xs.len() < 9);
            prop_assert_eq!(xs.len(), xs.capacity().min(xs.len()), "length {}", xs.len());
        }
    }
}
