//! Per-optimization ablation on one query (the Fig. 19 experiment in
//! miniature): start from the fully optimized configuration and disable one
//! optimization at a time.
//!
//! ```text
//! cargo run --release -p legobase --example ablation [query_number]
//! ```

use legobase::{LegoBase, Settings};
use std::time::Instant;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(6);
    let system = LegoBase::generate(0.02);
    let plan = system.plan(n);

    let time = |settings: &Settings| {
        let loaded = system.load(&plan, settings);
        let _ = loaded.execute(); // warm-up
        let t0 = Instant::now();
        let r = loaded.execute();
        (t0.elapsed(), r)
    };

    let (base_time, base_result) = time(&Settings::optimized());
    println!("TPC-H Q{n}, all optimizations on: {base_time:?}\n");
    println!("{:<34} {:>12} {:>10}", "disabled optimization", "time", "slowdown");

    type Tweak = fn(&mut Settings);
    let ablations: [(&str, Tweak); 7] = [
        ("data partitioning", |s| s.partitioning = false),
        ("hash-map lowering", |s| s.hashmap_lowering = false),
        ("date indices", |s| s.date_indices = false),
        ("string dictionaries", |s| s.string_dict = false),
        ("column layout", |s| s.column_store = false),
        ("code motion (hoisting)", |s| s.code_motion = false),
        ("unused-field removal", |s| s.field_removal = false),
    ];
    for (name, disable) in ablations {
        let mut s = Settings::optimized();
        disable(&mut s);
        let (t, r) = time(&s);
        assert!(r.approx_eq(&base_result, 1e-6), "{name}: ablation changed the result!");
        println!("{name:<34} {t:>12?} {:>9.2}x", t.as_secs_f64() / base_time.as_secs_f64());
    }
    println!("\n(every ablated configuration produced identical results)");
}
