//! Quickstart: generate TPC-H data, run one query under the interpreted
//! baseline and the fully optimized configuration, compare results and
//! timings.
//!
//! ```text
//! cargo run --release -p legobase --example quickstart
//! ```

use legobase::{Config, LegoBase};

fn main() {
    // TPC-H at scale factor 0.01 (≈60k lineitems), deterministic.
    let system = LegoBase::generate(0.01);

    println!("running TPC-H Q6 under two configurations of Table III…\n");
    let baseline = system.run(6, Config::Dbx);
    let optimized = system.run(6, Config::OptC);

    println!("DBX (interpreted row store):   {:?}", baseline.exec_time);
    println!("LegoBase(Opt/C) (specialized): {:?}", optimized.exec_time);
    println!(
        "speedup: {:.1}x\n",
        baseline.exec_time.as_secs_f64() / optimized.exec_time.as_secs_f64()
    );

    assert!(
        optimized.result.approx_eq(&baseline.result, 1e-6),
        "configurations disagree: {:?}",
        optimized.result.diff(&baseline.result, 1e-6)
    );
    println!("result (identical under both engines):");
    println!("{}", optimized.result.display(5));

    // What the SC pipeline decided for this query.
    let spec = &optimized.compilation.spec;
    println!("specialization derived by the SC pipeline:");
    println!("  date indices:   {:?}", spec.date_indexes);
    println!("  used columns:   {:?}", spec.used_columns.get("lineitem"));
}
