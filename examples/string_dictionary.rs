//! String dictionaries: mapping string operations to integer operations
//! (Section 3.4, Table II).
//!
//! LegoBase maintains one dictionary per string attribute. Equality checks
//! become integer comparisons; `startsWith`/`endsWith` need the *ordered*
//! dictionary (codes assigned in lexicographic order, so a prefix becomes a
//! `[start, end]` code range); `indexOfSlice` on words needs the
//! word-tokenizing dictionary.
//!
//! This example shows all three dictionary kinds directly against the
//! storage substrate, then measures the end-to-end effect on TPC-H Q12
//! (two `l_shipmode` equality checks and two `o_orderpriority` checks per
//! tuple) by comparing LegoBase(TPC-H/C) — strcmp-style comparisons — with
//! LegoBase(StrDict/C).
//!
//! ```text
//! cargo run --release -p legobase --example string_dictionary
//! ```

use legobase::storage::{DictKind, StringDictionary};
use legobase::{Config, LegoBase};

fn main() {
    // ---- Table II, row by row, on a toy attribute -------------------------
    let values = ["MAIL", "SHIP", "TRUCK", "AIR", "RAIL", "MAIL", "SHIP"];

    // `equals` / `notEquals`: any dictionary kind; one integer compare.
    let normal = StringDictionary::build(DictKind::Normal, values.iter().copied());
    let mail = normal.code("MAIL").expect("seen at load time");
    println!("Normal dictionary: {} distinct values", normal.len());
    println!("  x == \"MAIL\"      →  code(x) == {mail}");

    // `startsWith`: ordered dictionary, code range.
    let ordered = StringDictionary::build(DictKind::Ordered, values.iter().copied());
    let (lo, hi) = ordered.prefix_range("S").expect("some value starts with S");
    println!("Ordered dictionary: codes follow lexicographic order");
    println!("  x.startsWith(\"S\") →  {lo} <= code(x) && code(x) <= {hi}");

    // `indexOfSlice` on words: word-tokenizing dictionary.
    let comments =
        ["special requests sleep", "regular deposits", "special requests haggle furiously"];
    let word = StringDictionary::build(DictKind::WordToken, comments.iter().copied());
    let w1 = word.word_code("special").expect("tokenized");
    let w2 = word.word_code("requests").expect("tokenized");
    let hits =
        comments.iter().filter(|c| word.contains_word_seq(word.code(c).unwrap(), w1, w2)).count();
    println!("Word-token dictionary: \"special requests\" appears in {hits}/3 comments");

    // ---- end-to-end: Q12 with and without dictionaries --------------------
    // The same engine configuration, differing only in the `string_dict`
    // flag (the paper's "shared codebase that only differs by the effect of
    // a single optimization").
    println!("\nTPC-H Q12 (shipmode/priority string tests on every tuple):");
    let system = LegoBase::generate(0.05);
    let with_dict = Config::StrDictC.settings();
    let without_dict = with_dict.with(|s| s.string_dict = false);
    let plain = system.run_with_settings(12, &without_dict);
    let dict = system.run_with_settings(12, &with_dict);

    assert!(
        dict.result.approx_eq(&plain.result, 1e-6),
        "dictionaries changed the result: {:?}",
        dict.result.diff(&plain.result, 1e-6)
    );

    println!("  without dictionaries (strcmp):     {:?}", plain.exec_time);
    println!("  with dictionaries (integer codes): {:?}", dict.exec_time);
    println!("  speedup: {:.2}x", plain.exec_time.as_secs_f64() / dict.exec_time.as_secs_f64());

    // The trade-off the paper calls out: loading pays for the dictionary.
    println!("  load time without dictionaries: {:?}", plain.load_time);
    println!("  load time with dictionaries:    {:?}", dict.load_time);

    let spec = &dict.compilation.spec;
    println!("\ndictionaries chosen by the SC pipeline for Q12:");
    for d in &spec.dictionaries {
        println!("  {}.{}: {:?}", d.table, d.column, d.kind);
    }
    println!("\nresult:\n{}", dict.result.display(4));
}
