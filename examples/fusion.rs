//! Inter-operator optimization: eliminating redundant materializations
//! (Section 3.1, Fig. 9).
//!
//! The paper's motivating example (Fig. 2) aggregates relation S, then joins
//! the aggregation with relation R. A template-expanding compiler
//! materializes the aggregation twice: once in the group-by's hash table and
//! once in the join's. LegoBase pattern-matches the `HashJoin(Agg, …)` chain
//! and materializes the aggregates directly in the join's structure.
//!
//! This example builds the Fig. 2 query shape over TPC-H (aggregate orders
//! per customer, join with the customer relation), runs it with the fusion
//! on and off, and shows that the results are identical while the fused plan
//! builds one hash structure fewer.
//!
//! ```text
//! cargo run --release -p legobase --example fusion
//! ```

use legobase::engine::expr::{AggKind, Expr};
use legobase::engine::interop::count_fusable;
use legobase::engine::plan::{AggSpec, JoinKind, Plan, QueryPlan, SortOrder};
use legobase::{Config, LegoBase};

/// `SELECT c_nationkey, SUM(total_spent), COUNT(*) FROM
///  (SELECT o_custkey, SUM(o_totalprice) AS total_spent FROM orders GROUP BY o_custkey) t,
///  customer WHERE t.o_custkey = c_custkey AND c_acctbal > 0 GROUP BY c_nationkey`
fn fig2_style_plan() -> QueryPlan {
    let agg = Plan::Agg {
        input: Box::new(Plan::scan("orders")),
        group_by: vec![1], // o_custkey
        aggs: vec![
            AggSpec::new(AggKind::Sum, Expr::col(3), "total_spent"),
            AggSpec::new(AggKind::Count, Expr::lit(1i64), "n_orders"),
        ],
    };
    let join = Plan::HashJoin {
        left: Box::new(agg),
        right: Box::new(Plan::Select {
            input: Box::new(Plan::scan("customer")),
            predicate: Expr::gt(Expr::col(5), Expr::lit(0.0)), // c_acctbal > 0
        }),
        left_keys: vec![0],
        right_keys: vec![0],
        kind: JoinKind::Inner,
        residual: None,
    };
    let agg2 = Plan::Agg {
        input: Box::new(join),
        group_by: vec![6], // c_nationkey (aggregation output occupies 0..3)
        aggs: vec![
            AggSpec::new(AggKind::Sum, Expr::col(1), "nation_total"),
            AggSpec::new(AggKind::Count, Expr::lit(1i64), "n"),
        ],
    };
    QueryPlan::new("fig2", Plan::Sort { input: Box::new(agg2), keys: vec![(0, SortOrder::Asc)] })
}

fn main() {
    let system = LegoBase::generate(0.05);
    let query = fig2_style_plan();

    println!("Fig. 9 inter-operator fusion on the Fig. 2 query shape\n");
    println!("fusable agg⨝join sites detected in the plan: {}", count_fusable(&query.root));

    // Load once per configuration, execute repeatedly, report the median.
    let median = |settings| {
        let loaded = system.load(&query, &settings);
        let result = loaded.execute();
        let mut times: Vec<_> = (0..15)
            .map(|_| {
                let t0 = std::time::Instant::now();
                std::hint::black_box(loaded.execute());
                t0.elapsed()
            })
            .collect();
        times.sort();
        (result, times[times.len() / 2])
    };

    // Fusion only matters when no load-time partition already serves the
    // join: with partitioning on, the probe side is a direct array
    // dereference (Fig. 10) and no join hash table exists to fuse away.
    // Compare the single-flag ablation in both regimes (the paper's "shared
    // codebase that only differs by the effect of a single optimization").
    let mut reference = None;
    for (label, base) in [
        (
            "join hash table needed (no partitioning)",
            Config::OptC.settings().with(|s| s.partitioning = false),
        ),
        ("join served by a load-time partition", Config::OptC.settings()),
    ] {
        let fused_settings = base.with(|s| s.interop_fusion = true);
        let unfused_settings = base.with(|s| s.interop_fusion = false);
        let (fused, fused_time) = median(fused_settings);
        let (unfused, unfused_time) = median(unfused_settings);

        assert!(
            fused.approx_eq(&unfused, 1e-6),
            "fusion changed the result: {:?}",
            fused.diff(&unfused, 1e-6)
        );
        println!("── {label} ──");
        println!("  with fusion (median of 15):    {fused_time:?}");
        println!("  without fusion (median of 15): {unfused_time:?}");
        println!(
            "  effect of removing the duplicate materialization: {:.2}x\n",
            unfused_time.as_secs_f64() / fused_time.as_secs_f64()
        );
        reference = Some(fused);
    }

    println!("first rows (nationkey, nation_total, n):");
    println!("{}", reference.expect("two runs happened").display(5));
}
