//! The paper's running example (Fig. 8): TPC-H Q12 across all eight system
//! configurations of Table III, with the optimizations the SC pipeline
//! selected for it (Section 3's per-optimization walkthroughs all use Q12).
//!
//! ```text
//! cargo run --release -p legobase --example tpch_q12
//! ```

use legobase::{Config, LegoBase};

fn main() {
    let system = LegoBase::generate(0.02);

    println!("== Q12 under every configuration of Table III ==");
    println!("{:<26} {:>12} {:>12}", "configuration", "load", "execute");
    let reference = system.run(12, Config::Dbx);
    for config in Config::ALL {
        let out = system.run(12, config);
        assert!(
            out.result.approx_eq(&reference.result, 1e-6),
            "{config:?} diverges: {:?}",
            out.result.diff(&reference.result, 1e-6)
        );
        println!("{:<26} {:>12?} {:>12?}", config.name(), out.load_time, out.exec_time);
    }

    let out = system.run(12, Config::OptC);
    println!("\nresult (ship mode → high/low line counts):");
    println!("{}", out.result.display(10));

    println!("what the pipeline specialized for Q12 (cf. Section 3):");
    let spec = &out.compilation.spec;
    println!("  partitions:   {:?}", spec.fk_partitions);
    println!("  pk indexes:   {:?}", spec.pk_indexes);
    println!("  date indexes: {:?}", spec.date_indexes);
    println!("  dictionaries: {:?}", spec.dictionaries);
    let total_attrs: usize = spec.used_columns.values().map(Vec::len).sum();
    println!("  attributes loaded: {total_attrs} of {} (unused-field removal, Sec. 3.6.1)", 9 + 16);
}
