//! The progressive-lowering walkthrough of Fig. 7: compile TPC-H Q6 with the
//! SC pipeline, print each phase's effect on the IR, and show the final
//! generated C.
//!
//! ```text
//! cargo run --release -p legobase --example compiler_pipeline
//! ```

use legobase::{LegoBase, Settings};

fn main() {
    let system = LegoBase::generate(0.002);
    let query = system.plan(6);
    let result = legobase::sc::compile(&query, &system.data.catalog, &Settings::optimized());

    println!("== transformation pipeline for {} (Fig. 5b order) ==", query.name);
    println!("{:<38} {:>8} {:>12}", "phase", "IR size", "time");
    for phase in &result.trace {
        println!(
            "{:<38} {:>8} {:>9.2}ms",
            phase.name,
            phase.size,
            phase.duration.as_secs_f64() * 1e3
        );
    }

    println!("\n== specialization report (consumed by the loader/executor) ==");
    println!("fk partitions: {:?}", result.spec.fk_partitions);
    println!("pk indexes:    {:?}", result.spec.pk_indexes);
    println!("date indexes:  {:?}", result.spec.date_indexes);
    println!("dictionaries:  {:?}", result.spec.dictionaries);
    println!("used columns:  {:?}", result.spec.used_columns);

    println!("\n== operator-inlined program (Fig. 7c analog, Scala rendering) ==");
    println!("{}", legobase::sc::scala::emit_scala(&result.stages[0]));

    println!("== fully lowered program (Scala rendering) ==");
    println!("{}", legobase::sc::scala::emit_scala(&result.program));

    println!("== generated C (Fig. 7g analog) ==");
    println!("{}", result.c_source);
}
