//! Extending the SC pipeline with an *instructed* optimization
//! (Section 2.2: "developers do so by explicitly specifying a transformation
//! pipeline"; Section 3.6.3: "the compiler can be instructed to apply tiling
//! to for loops whose range are known at compile time").
//!
//! The paper's central API claim is that transformers are black boxes a
//! developer plugs into an explicit pipeline — configurable (on/off at
//! demand) and composable (chainable in any order). This example builds the
//! standard pipeline for a configuration, appends the opt-in `LoopTiling`
//! pass, and shows (a) the phase list, (b) the tiled loop in the generated C,
//! and (c) that the compiled query still produces the same specialization
//! decisions.
//!
//! ```text
//! cargo run --release -p legobase --example custom_pipeline
//! ```

use legobase::sc::transform::LoopTiling;
use legobase::sc::Pipeline;
use legobase::{LegoBase, Settings};

fn main() {
    let system = LegoBase::generate(0.01);
    let query = system.plan(1); // Q1: one big lineitem scan

    // A configuration whose Q1 scan stays a plain loop (no date index), so
    // tiling has a target.
    let settings = Settings::optimized().with(|s| {
        s.date_indices = false;
        s.partitioning = false;
    });

    // Standard pipeline…
    let standard = Pipeline::for_settings(&settings);
    println!("standard pipeline phases:");
    for name in standard.phase_names() {
        println!("  {name}");
    }

    // …plus one instructed pass, appended exactly like Fig. 5b's
    // `pipeline += <transformer>`.
    let mut custom = Pipeline::for_settings(&settings);
    custom.add(LoopTiling { tile: 512 });
    println!("\ncustom pipeline appends: LoopTiling (tile = 512)");

    let plain = standard.run(&query, &system.data.catalog, &settings);
    let tiled = custom.run(&query, &system.data.catalog, &settings);

    // The instructed pass only reshapes the loop; every load-time decision
    // (dictionaries, used columns) is unchanged.
    assert_eq!(plain.spec.used_columns, tiled.spec.used_columns);
    assert_eq!(plain.spec.dictionaries, tiled.spec.dictionaries);

    println!("\ngenerated C, blocked scan (excerpt):");
    for line in tiled.c_source.lines().skip_while(|l| !l.contains("+= 512")).take(6) {
        println!("  {line}");
    }

    println!(
        "\nSC optimization time: standard {:?}, custom {:?}",
        plain.optimize_time, tiled.optimize_time
    );
    println!("(compilation stays in the Fig. 22 budget with extra phases)");
}
