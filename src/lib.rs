#![warn(missing_docs)]
//! Workspace-level test and example host for LegoBase-rs.
//!
//! This crate intentionally exports nothing. It exists so the cross-crate
//! integration suites in `tests/` (engine-equivalence oracles, TPC-H
//! conformance, random-plan properties) and the runnable walkthroughs in
//! `examples/` are first-class workspace targets driving the public
//! [`legobase`] facade exactly as a downstream user would. See `README.md`
//! for the map of the workspace and `DESIGN.md` for the architecture.
